//! Grow-only scratch buffers for layer internals.
//!
//! Layers that need named intermediate storage (im2col columns, RNN gate
//! pre-activations, normalisation statistics, …) own a [`Workspace`] and
//! borrow buffers from it by [`Role`]. Buffers grow to the high-water mark
//! of the layer's workload and are then reused verbatim, so after the first
//! call at a given batch size the layer's forward and backward paths touch
//! the allocator zero times.
//!
//! The `take`/`put` protocol moves the `Vec` out of the workspace for the
//! duration of its use. That sidesteps aliasing restrictions when a layer
//! needs two scratch buffers at once (or needs `&self` methods while a
//! buffer is live), and it makes leaks loud: a buffer that is never `put`
//! back is re-grown on the next call and shows up in the `grows` counter.

use std::collections::HashMap;

/// What a scratch buffer is used for. One live buffer per role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Current-timestep input slice (RNNs).
    StepInput,
    /// Pre-activation buffer (gate pre-activations, linear pre-bias, …).
    Preact,
    /// Post-nonlinearity gate values (RNNs).
    Gates,
    /// Cell-state scratch (LSTM).
    Cell,
    /// im2col column matrix (convolutions).
    Cols,
    /// Gradient of the column matrix (convolution backward).
    ColGrad,
    /// Per-group statistics (normalisation layers).
    Stats,
    /// Free-form scratch.
    Aux1,
    /// Second free-form scratch.
    Aux2,
}

/// Workspace traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total `take` calls.
    pub takes: u64,
    /// `take` calls that had to (re)allocate because the stored buffer was
    /// missing or too small. In steady state this stays flat.
    pub grows: u64,
}

/// A role-keyed set of grow-only `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    bufs: HashMap<Role, Vec<f32>>,
    stats: WorkspaceStats,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Borrows the buffer for `role`, zero-filled to exactly `len`
    /// elements. The buffer is moved out of the workspace; return it with
    /// [`Workspace::put`] when done so the capacity is retained.
    pub fn take(&mut self, role: Role, len: usize) -> Vec<f32> {
        self.stats.takes += 1;
        let mut buf = self.bufs.remove(&role).unwrap_or_default();
        if buf.capacity() < len {
            self.stats.grows += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer taken with [`Workspace::take`].
    pub fn put(&mut self, role: Role, buf: Vec<f32>) {
        self.bufs.insert(role, buf);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Resets counters (buffers are kept).
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_grows_once_then_reuses() {
        let mut ws = Workspace::new();
        let b = ws.take(Role::Cols, 100);
        assert_eq!(b.len(), 100);
        ws.put(Role::Cols, b);
        let b = ws.take(Role::Cols, 80);
        ws.put(Role::Cols, b);
        let b = ws.take(Role::Cols, 100);
        ws.put(Role::Cols, b);
        let s = ws.stats();
        assert_eq!(s.takes, 3);
        assert_eq!(s.grows, 1, "only the first take should allocate");
    }

    #[test]
    fn take_zero_fills() {
        let mut ws = Workspace::new();
        let mut b = ws.take(Role::Preact, 8);
        b.iter_mut().for_each(|v| *v = 3.0);
        ws.put(Role::Preact, b);
        let b = ws.take(Role::Preact, 8);
        assert!(b.iter().all(|&v| v == 0.0));
        ws.put(Role::Preact, b);
    }

    #[test]
    fn roles_are_independent() {
        let mut ws = Workspace::new();
        let a = ws.take(Role::Aux1, 4);
        let b = ws.take(Role::Aux2, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        ws.put(Role::Aux1, a);
        ws.put(Role::Aux2, b);
        assert_eq!(ws.stats().grows, 2);
    }

    #[test]
    fn unreturned_buffer_regrows() {
        let mut ws = Workspace::new();
        let _leaked = ws.take(Role::Gates, 16);
        let b = ws.take(Role::Gates, 16);
        assert_eq!(ws.stats().grows, 2);
        ws.put(Role::Gates, b);
    }
}
