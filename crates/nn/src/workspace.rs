//! Grow-only scratch buffers for layer internals.
//!
//! Layers that need named intermediate storage (im2col columns, RNN gate
//! pre-activations, normalisation statistics, …) own a [`Workspace`] and
//! borrow buffers from it by [`Role`]. Buffers grow to the high-water mark
//! of the layer's workload and are then reused verbatim, so after the first
//! call at a given batch size the layer's forward and backward paths touch
//! the allocator zero times.
//!
//! The `take`/`put` protocol moves the `Vec` out of the workspace for the
//! duration of its use. That sidesteps aliasing restrictions when a layer
//! needs two scratch buffers at once (or needs `&self` methods while a
//! buffer is live), and it makes leaks loud: a buffer that is never `put`
//! back is re-grown on the next call and shows up in the `grows` counter.

use std::collections::HashMap;

/// What a scratch buffer is used for. One live buffer per role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Current-timestep input slice (RNNs).
    StepInput,
    /// Pre-activation buffer (gate pre-activations, linear pre-bias, …).
    Preact,
    /// Post-nonlinearity gate values (RNNs).
    Gates,
    /// Cell-state scratch (LSTM).
    Cell,
    /// im2col column matrix (convolutions).
    Cols,
    /// Gradient of the column matrix (convolution backward).
    ColGrad,
    /// Per-group statistics (normalisation layers).
    Stats,
    /// Free-form scratch.
    Aux1,
    /// Second free-form scratch.
    Aux2,
}

/// Workspace traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Total `take` calls.
    pub takes: u64,
    /// `take` calls that had to (re)allocate because the stored buffer was
    /// missing or too small. In steady state this stays flat.
    pub grows: u64,
}

/// A role-keyed set of grow-only `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    bufs: HashMap<Role, Vec<f32>>,
    stats: WorkspaceStats,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Borrows the buffer for `role`, zero-filled to exactly `len`
    /// elements. The buffer is moved out of the workspace; return it with
    /// [`Workspace::put`] when done so the capacity is retained.
    pub fn take(&mut self, role: Role, len: usize) -> Vec<f32> {
        self.stats.takes += 1;
        let mut buf = self.bufs.remove(&role).unwrap_or_default();
        if buf.capacity() < len {
            self.stats.grows += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer taken with [`Workspace::take`].
    pub fn put(&mut self, role: Role, buf: Vec<f32>) {
        self.bufs.insert(role, buf);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Resets counters (buffers are kept).
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }
}

/// Per-layer prefix-activation cache for the anytime forward
/// (`Layer::forward_prefix`).
///
/// Holds the layer's output at **full stride** (every row `out_dim` wide,
/// prefix columns filled, the rest zero) plus a `done` watermark recording
/// how many leading units are valid. A refine pass `resume`s the cache,
/// computes only the delta groups, and advances the watermark; a fresh pass
/// `begin`s it. The buffer is grow-only, so steady-state refinement touches
/// the allocator zero times.
#[derive(Debug, Default)]
pub struct PrefixCache {
    /// Full-stride activation storage, `batch × stride`.
    pub buf: Vec<f32>,
    /// Leading units per row that hold valid prefix activations.
    pub done: usize,
    /// Batch size the cache was filled at.
    pub batch: usize,
}

impl PrefixCache {
    /// Starts a fresh prefix pass: zero-fills to `batch · stride` elements
    /// and resets the watermark.
    pub fn begin(&mut self, batch: usize, stride: usize) {
        self.buf.clear();
        self.buf.resize(batch * stride, 0.0);
        self.done = 0;
        self.batch = batch;
    }

    /// Resumes a refine pass: asserts the cache really holds `expected_done`
    /// valid units for this `batch`/`stride`, panicking with the layer name
    /// otherwise (a refine against a stale cache would silently corrupt
    /// logits; the contract violation must be loud).
    pub fn resume(&mut self, batch: usize, stride: usize, expected_done: usize, name: &str) {
        assert!(
            self.batch == batch && self.buf.len() == batch * stride && self.done == expected_done,
            "{name}: refine against stale prefix cache \
             (cached batch {} × len {} done {}, expected batch {batch} × len {} done {expected_done})",
            self.batch,
            self.buf.len(),
            self.done,
            batch * stride,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_cache_begin_resets_and_resume_checks() {
        let mut c = PrefixCache::default();
        c.begin(2, 5);
        assert_eq!(c.buf.len(), 10);
        c.buf[3] = 7.0;
        c.done = 3;
        c.resume(2, 5, 3, "t");
        c.begin(2, 5);
        assert!(c.buf.iter().all(|&v| v == 0.0), "begin must zero-fill");
        assert_eq!(c.done, 0);
    }

    #[test]
    #[should_panic(expected = "stale prefix cache")]
    fn prefix_cache_resume_rejects_mismatched_watermark() {
        let mut c = PrefixCache::default();
        c.begin(2, 5);
        c.resume(2, 5, 3, "t");
    }

    #[test]
    fn take_grows_once_then_reuses() {
        let mut ws = Workspace::new();
        let b = ws.take(Role::Cols, 100);
        assert_eq!(b.len(), 100);
        ws.put(Role::Cols, b);
        let b = ws.take(Role::Cols, 80);
        ws.put(Role::Cols, b);
        let b = ws.take(Role::Cols, 100);
        ws.put(Role::Cols, b);
        let s = ws.stats();
        assert_eq!(s.takes, 3);
        assert_eq!(s.grows, 1, "only the first take should allocate");
    }

    #[test]
    fn take_zero_fills() {
        let mut ws = Workspace::new();
        let mut b = ws.take(Role::Preact, 8);
        b.iter_mut().for_each(|v| *v = 3.0);
        ws.put(Role::Preact, b);
        let b = ws.take(Role::Preact, 8);
        assert!(b.iter().all(|&v| v == 0.0));
        ws.put(Role::Preact, b);
    }

    #[test]
    fn roles_are_independent() {
        let mut ws = Workspace::new();
        let a = ws.take(Role::Aux1, 4);
        let b = ws.take(Role::Aux2, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        ws.put(Role::Aux1, a);
        ws.put(Role::Aux2, b);
        assert_eq!(ws.stats().grows, 2);
    }

    #[test]
    fn unreturned_buffer_regrows() {
        let mut ws = Workspace::new();
        let _leaked = ws.take(Role::Gates, 16);
        let b = ws.take(Role::Gates, 16);
        assert_eq!(ws.stats().grows, 2);
        ws.put(Role::Gates, b);
    }
}
