//! Property-based tests over the sliceable layers: subsumption, gradient
//! confinement and scale stability across random configurations.

use ms_nn::conv2d::{Conv2d, Conv2dConfig};
use ms_nn::gradcheck::{check_layer, CheckOpts};
use ms_nn::layer::{Layer, Mode};
use ms_nn::norm::GroupNorm;
use ms_nn::rnn::lstm::{Lstm, LstmConfig};
use ms_nn::slice::{active_units, SliceRate};
use ms_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

fn random_tensor(rng: &mut SeededRng, dims: Vec<usize>) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(dims, (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()).expect("tensor")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv subsumption: with the input unsliced, the sliced conv's output
    /// equals the first channels of the full conv's output for any
    /// geometry and rate.
    #[test]
    fn conv_prefix_subsumption(
        out_ch_groups in 1usize..4, // out_ch = 4 * this
        hw in 3usize..7,
        kernel in 1usize..4,
        rate_idx in 1usize..4,
        seed in any::<u64>(),
    ) {
        let out_ch = 4 * out_ch_groups;
        prop_assume!(hw >= kernel);
        let mut rng = SeededRng::new(seed);
        let mut conv = Conv2d::new(
            "c",
            Conv2dConfig {
                in_ch: 3,
                out_ch,
                kernel,
                stride: 1,
                pad: kernel / 2,
                h: hw,
                w: hw,
                in_groups: None,
                out_groups: Some(4),
                bias: true,
            },
            &mut rng,
        );
        let x = random_tensor(&mut rng, vec![1, 3, hw, hw]);
        let full = conv.forward(&x, Mode::Infer);
        let rate = SliceRate::new(rate_idx as f32 / 4.0);
        conv.set_slice_rate(rate);
        let sliced = conv.forward(&x, Mode::Infer);
        let a_out = active_units(out_ch, 4, rate);
        prop_assert_eq!(sliced.dims()[1], a_out);
        let plane = full.dims()[2] * full.dims()[3];
        for c in 0..a_out {
            for k in 0..plane {
                let a = sliced.data()[c * plane + k];
                let b = full.data()[c * plane + k];
                prop_assert!((a - b).abs() < 1e-4, "ch {c} px {k}: {a} vs {b}");
            }
        }
    }

    /// GroupNorm scale stability: the normalised output distribution of the
    /// active prefix is unchanged by how many groups are active.
    #[test]
    fn group_norm_prefix_invariance(
        groups in 2usize..6,
        ch_per_group in 1usize..4,
        active in 1usize..6,
        seed in any::<u64>(),
    ) {
        let channels = groups * ch_per_group;
        let active = active.min(groups);
        let mut rng = SeededRng::new(seed);
        let mut gn = GroupNorm::new("g", channels, groups);
        let x_full = random_tensor(&mut rng, vec![2, channels, 2, 2]);
        let full = gn.forward(&x_full, Mode::Infer);
        // Slice input to the first `active` groups.
        let keep = active * ch_per_group;
        let mut x_small = Tensor::zeros([2, keep, 2, 2]);
        for s in 0..2 {
            let src = &x_full.row(s)[..keep * 4];
            x_small.row_mut(s).copy_from_slice(src);
        }
        gn.set_slice_rate(SliceRate::new(active as f32 / groups as f32));
        let sliced = gn.forward(&x_small, Mode::Infer);
        for s in 0..2 {
            for i in 0..keep * 4 {
                let a = sliced.row(s)[i];
                let b = full.row(s)[i];
                prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    /// Sliced conv gradients never leak outside the active block, for any
    /// rate and kernel size.
    #[test]
    fn conv_gradient_confinement(
        rate_idx in 1usize..4,
        kernel in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let mut conv = Conv2d::new(
            "c",
            Conv2dConfig {
                in_ch: 8,
                out_ch: 8,
                kernel,
                stride: 1,
                pad: kernel / 2,
                h: 5,
                w: 5,
                in_groups: Some(4),
                out_groups: Some(4),
                bias: false,
            },
            &mut rng,
        );
        let rate = SliceRate::new(rate_idx as f32 / 4.0);
        conv.set_slice_rate(rate);
        let a = active_units(8, 4, rate);
        let x = random_tensor(&mut rng, vec![1, a, 5, 5]);
        let y = conv.forward(&x, Mode::Train);
        let _ = conv.backward(&Tensor::full(y.shape().clone(), 1.0));
        let k2 = kernel * kernel;
        let mut leaked = false;
        conv.visit_params(&mut |p| {
            for o in 0..8 {
                for idx in 0..8 * k2 {
                    let v = p.grad.at(&[o, idx]);
                    let active_cell = o < a && idx < a * k2;
                    if !active_cell && v != 0.0 {
                        leaked = true;
                    }
                }
            }
        });
        prop_assert!(!leaked, "gradient leaked outside active block");
    }

    /// LSTM gradcheck across random widths and rates.
    #[test]
    fn lstm_gradcheck_random_configs(
        hidden_groups in 1usize..3, // hidden = 4 * this
        rate_idx in 2usize..5,      // rate in {0.5, 0.75, 1.0}
        rescale in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let hidden = 4 * hidden_groups;
        let mut rng = SeededRng::new(seed);
        let mut lstm = Lstm::new(
            "l",
            LstmConfig {
                in_dim: 4,
                hidden_dim: hidden,
                in_groups: None,
                out_groups: Some(4),
                input_rescale: rescale,
            },
            &mut rng,
        );
        let rate = SliceRate::new(rate_idx as f32 / 4.0);
        lstm.set_slice_rate(rate);
        let x = random_tensor(&mut rng, vec![2, 2, 4]);
        let res = check_layer(&mut lstm, &x, &mut rng, &CheckOpts::default());
        prop_assert!(res.is_ok(), "{:?}", res.err());
    }
}
