//! Steady-state allocation instrumentation.
//!
//! A counting global allocator verifies the PR-1 claim directly: after a
//! short warm-up (which populates the thread-local buffer pool and each
//! layer's [`Workspace`]), Infer-mode forward passes through `Linear`,
//! `Conv2d` and `Lstm` perform **zero** heap allocations. The counter is
//! thread-local so the test harness' own threads cannot pollute the
//! measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ms_nn::conv2d::{Conv2d, Conv2dConfig};
use ms_nn::layer::{Layer, Mode};
use ms_nn::linear::{Linear, LinearConfig};
use ms_nn::rnn::lstm::{Lstm, LstmConfig};
use ms_tensor::{pool, SeededRng, Tensor};

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` keeps the hook safe during TLS teardown.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_COUNT.with(Cell::get);
    f();
    ALLOC_COUNT.with(Cell::get) - before
}

/// One test function (not several) so the per-thread counter, the
/// thread-local pool and the layer workspaces all live on a single thread.
#[test]
fn steady_state_infer_forward_allocates_nothing() {
    let mut rng = SeededRng::new(7);

    // --- Linear ------------------------------------------------------
    let mut fc = Linear::new(
        "fc",
        LinearConfig {
            in_dim: 64,
            out_dim: 64,
            in_groups: None,
            out_groups: Some(4),
            bias: true,
            input_rescale: true,
        },
        &mut rng,
    );
    let x = Tensor::zeros([8, 64]);
    for _ in 0..3 {
        fc.forward(&x, Mode::Infer).recycle();
    }
    let delta = allocations(|| {
        for _ in 0..10 {
            fc.forward(&x, Mode::Infer).recycle();
        }
    });
    assert_eq!(
        delta, 0,
        "Linear steady-state Infer forward allocated {delta}x"
    );

    // --- Conv2d ------------------------------------------------------
    let mut conv = Conv2d::new(
        "conv",
        Conv2dConfig {
            in_ch: 8,
            out_ch: 16,
            kernel: 3,
            stride: 1,
            pad: 1,
            h: 8,
            w: 8,
            in_groups: None,
            out_groups: Some(4),
            bias: true,
        },
        &mut rng,
    );
    let xc = Tensor::zeros([2, 8, 8, 8]);
    for _ in 0..3 {
        conv.forward(&xc, Mode::Infer).recycle();
    }
    let grows_before = conv.workspace_stats().grows;
    pool::reset_stats();
    let delta = allocations(|| {
        for _ in 0..10 {
            conv.forward(&xc, Mode::Infer).recycle();
        }
    });
    assert_eq!(
        delta, 0,
        "Conv2d steady-state Infer forward allocated {delta}x"
    );
    // Every pooled acquire in the loop was served from the pool…
    let stats = pool::stats();
    assert_eq!(stats.misses, 0, "pool misses in steady state: {stats:?}");
    assert!(stats.hits > 0, "expected pooled acquires: {stats:?}");
    // …and the im2col workspace never re-grew.
    assert_eq!(
        conv.workspace_stats().grows,
        grows_before,
        "Conv2d workspace grew after warm-up"
    );

    // --- Lstm --------------------------------------------------------
    let mut lstm = Lstm::new(
        "lstm",
        LstmConfig {
            in_dim: 16,
            hidden_dim: 16,
            in_groups: None,
            out_groups: Some(4),
            input_rescale: true,
        },
        &mut rng,
    );
    let xl = Tensor::zeros([2, 4, 16]);
    for _ in 0..3 {
        lstm.forward(&xl, Mode::Infer).recycle();
    }
    let delta = allocations(|| {
        for _ in 0..10 {
            lstm.forward(&xl, Mode::Infer).recycle();
        }
    });
    assert_eq!(
        delta, 0,
        "Lstm steady-state Infer forward allocated {delta}x"
    );
}
