//! The §4.1 batching policy.
//!
//! "Build a mini-batch in every `T/2` time, and utilise the rest `T/2` time
//! budget for processing." One tick of the simulation *is* one `T/2`
//! interval: arrivals during tick `t` form the batch processed during tick
//! `t + 1`, giving every sample a worst-case latency of `T` (up to `T/2`
//! waiting + up to `T/2` processing) when the controller keeps processing
//! within budget.

use serde::{Deserialize, Serialize};

/// A mini-batch handed to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingBatch {
    /// Tick at which the batch closed (arrivals collected during it).
    pub formed_at: usize,
    /// Number of queries in the batch.
    pub size: usize,
}

/// Turns an arrival trace into the stream of batches the server processes.
pub fn batches_of(arrivals: &[usize]) -> Vec<PendingBatch> {
    arrivals
        .iter()
        .enumerate()
        .map(|(t, &n)| PendingBatch {
            formed_at: t,
            size: n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_batch_per_tick_preserving_counts() {
        let arrivals = vec![3, 0, 7, 1];
        let batches = batches_of(&arrivals);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[2], PendingBatch { formed_at: 2, size: 7 });
        let total: usize = batches.iter().map(|b| b.size).sum();
        assert_eq!(total, 11);
    }
}
