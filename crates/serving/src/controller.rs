//! Slice-rate selection policies and the accuracy table they are scored by.
//!
//! Two generations live here: [`Policy`] scores degradation strategies inside
//! the synthetic [`crate::simulator`], while [`SlaController`] makes the same
//! decision for the real [`crate::engine`] against a *measured*
//! [`LatencyProfile`] instead of the assumed quadratic cost law.

use crate::profile::LatencyProfile;
use ms_core::slice_rate::{SliceRate, SliceRateList};
use serde::{Deserialize, Serialize};

/// Measured accuracy per candidate slice rate (ascending with the list),
/// produced by evaluating the trained model once per rate. The simulator
/// scores policies against this table instead of re-running the network per
/// batch, keeping the simulation cheap without changing the comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyTable {
    list: SliceRateList,
    accuracy: Vec<f64>,
}

impl AccuracyTable {
    /// Creates the table; `accuracy[i]` corresponds to `list.at(i)`.
    pub fn new(list: SliceRateList, accuracy: Vec<f64>) -> Self {
        assert_eq!(list.len(), accuracy.len());
        assert!(accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
        AccuracyTable { list, accuracy }
    }

    /// The candidate rate list.
    pub fn list(&self) -> &SliceRateList {
        &self.list
    }

    /// Accuracy at a candidate rate.
    pub fn at(&self, r: SliceRate) -> f64 {
        let idx = self.list.index_of(r).expect("rate in candidate list");
        self.accuracy[idx]
    }

    /// Accuracy of the full model.
    pub fn full(&self) -> f64 {
        *self.accuracy.last().expect("nonempty")
    }

    /// Accuracy of the base (smallest) model.
    pub fn base(&self) -> f64 {
        self.accuracy[0]
    }
}

/// What the server does with a batch of `n` queries given `budget` seconds
/// of processing time and the full-model per-sample time `t_full`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Always run the full model; queries that do not fit the budget are
    /// shed (the crash/overflow regime of §1).
    FixedFull,
    /// Always run the base-width model: meets load but wastes accuracy in
    /// off-peak hours.
    FixedBase,
    /// Coarse degradation (the "naive approach" of §1): run the full model
    /// while it fits; when overloaded, swap the whole batch to a cheap
    /// model whose relative cost and accuracy are given.
    ModelSwap {
        /// Cheap model cost relative to the full model (e.g. 0.05 ≈ GBDT).
        rel_cost: f64,
        /// Cheap model accuracy (absolute).
        accuracy: f64,
    },
    /// Coarse degradation: run the full model on the first `k` queries that
    /// fit the budget, shed the rest ("reduce the size of the candidate
    /// items").
    DropCandidates,
    /// The paper's elastic policy: largest rate with `n·r²·t_full ≤ budget`.
    ModelSlicing,
}

/// Outcome of one batch decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Queries actually processed.
    pub served: usize,
    /// Queries shed.
    pub shed: usize,
    /// Processing time consumed (seconds).
    pub time_spent: f64,
    /// Mean accuracy over *all* queries in the batch, counting shed queries
    /// as wrong (a shed query returns no / a default answer).
    pub effective_accuracy: f64,
    /// Width used, when a sliced/full model ran.
    pub rate: Option<f32>,
}

impl Policy {
    /// Decides how to process a batch of `n` queries.
    pub fn decide(
        &self,
        n: usize,
        t_full: f64,
        budget: f64,
        table: &AccuracyTable,
    ) -> Decision {
        if n == 0 {
            return Decision {
                served: 0,
                shed: 0,
                time_spent: 0.0,
                effective_accuracy: 1.0,
                rate: None,
            };
        }
        let nf = n as f64;
        match *self {
            Policy::FixedFull => {
                let fit = ((budget / t_full).floor() as usize).min(n);
                Decision {
                    served: fit,
                    shed: n - fit,
                    time_spent: fit as f64 * t_full,
                    effective_accuracy: table.full() * fit as f64 / nf,
                    rate: Some(1.0),
                }
            }
            Policy::FixedBase => {
                let r = table.list().min();
                let per = t_full * (r.get() as f64) * (r.get() as f64);
                let fit = ((budget / per).floor() as usize).min(n);
                Decision {
                    served: fit,
                    shed: n - fit,
                    time_spent: fit as f64 * per,
                    effective_accuracy: table.base() * fit as f64 / nf,
                    rate: Some(r.get()),
                }
            }
            Policy::ModelSwap { rel_cost, accuracy } => {
                // Full model if the whole batch fits, else the cheap model.
                if nf * t_full <= budget {
                    Decision {
                        served: n,
                        shed: 0,
                        time_spent: nf * t_full,
                        effective_accuracy: table.full(),
                        rate: Some(1.0),
                    }
                } else {
                    let per = t_full * rel_cost;
                    let fit = ((budget / per).floor() as usize).min(n);
                    Decision {
                        served: fit,
                        shed: n - fit,
                        time_spent: fit as f64 * per,
                        effective_accuracy: accuracy * fit as f64 / nf,
                        rate: None,
                    }
                }
            }
            Policy::DropCandidates => {
                let fit = ((budget / t_full).floor() as usize).min(n);
                Decision {
                    served: fit,
                    shed: n - fit,
                    time_spent: fit as f64 * t_full,
                    effective_accuracy: table.full() * fit as f64 / nf,
                    rate: Some(1.0),
                }
            }
            Policy::ModelSlicing => {
                // Largest rate with n·r²·t ≤ budget, clamped to the base
                // rate; if even the base overflows, shed the excess at the
                // base rate.
                let r2 = budget / (nf * t_full);
                let r = table.list().snap_down(r2.max(0.0).sqrt() as f32);
                let per = t_full * (r.get() as f64) * (r.get() as f64);
                let fit = ((budget / per).floor() as usize).min(n);
                Decision {
                    served: fit,
                    shed: n - fit,
                    time_spent: fit as f64 * per,
                    effective_accuracy: table.at(r) * fit as f64 / nf,
                    rate: Some(r.get()),
                }
            }
        }
    }
}

/// What width a real serving engine runs each batch at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RatePolicy {
    /// The paper's elastic policy against the *measured* profile: widest
    /// rate whose predicted service time fits the budget; when even the
    /// base rate cannot serve the whole batch, admit as many as fit at the
    /// base rate and shed the rest — never violate the deadline.
    Elastic,
    /// A conventional inelastic server: run everything at this width and
    /// accept whatever latency results (the overload/crash regime of §1 —
    /// batches overrun the budget and the backlog snowballs).
    Fixed(SliceRate),
    /// A fixed-width server with admission control: run admitted queries at
    /// this width, shed what does not fit the budget.
    FixedShedding(SliceRate),
}

/// Outcome of one admission decision over a formed batch of `n` queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaDecision {
    /// Width the admitted queries run at.
    pub rate: SliceRate,
    /// Queries admitted (a prefix of the batch, arrival order).
    pub admit: usize,
    /// Queries shed.
    pub shed: usize,
}

/// Maps batch size → (rate, admission) through a measured latency profile:
/// the SLA-driven replacement for the synthetic [`Policy`]. Decisions are a
/// pure function of `(n, budget)`, which is what makes engine replays
/// deterministic regardless of worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlaController {
    profile: LatencyProfile,
    policy: RatePolicy,
}

impl SlaController {
    /// Creates a controller.
    pub fn new(profile: LatencyProfile, policy: RatePolicy) -> Self {
        if let RatePolicy::Fixed(r) | RatePolicy::FixedShedding(r) = policy {
            assert!(
                profile.list().index_of(r).is_some(),
                "fixed rate {r} not in the calibrated list"
            );
        }
        SlaController { profile, policy }
    }

    /// Elastic controller (the default serving configuration).
    pub fn elastic(profile: LatencyProfile) -> Self {
        SlaController::new(profile, RatePolicy::Elastic)
    }

    /// The latency profile decisions are planned against.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// The configured policy.
    pub fn policy(&self) -> RatePolicy {
        self.policy
    }

    /// Decides width and admission for a batch of `n` given `budget` seconds
    /// of processing time.
    pub fn decide(&self, n: usize, budget: f64) -> SlaDecision {
        let full = self.profile.list().max();
        if n == 0 {
            return SlaDecision {
                rate: full,
                admit: 0,
                shed: 0,
            };
        }
        match self.policy {
            RatePolicy::Elastic => match self.profile.rate_within(n, budget) {
                Some(rate) => SlaDecision {
                    rate,
                    admit: n,
                    shed: 0,
                },
                None => {
                    let r_min = self.profile.list().min();
                    let admit = self.profile.max_batch(r_min, budget).min(n);
                    SlaDecision {
                        rate: r_min,
                        admit,
                        shed: n - admit,
                    }
                }
            },
            RatePolicy::Fixed(rate) => SlaDecision {
                rate,
                admit: n,
                shed: 0,
            },
            RatePolicy::FixedShedding(rate) => {
                let admit = self.profile.max_batch(rate, budget).min(n);
                SlaDecision {
                    rate,
                    admit,
                    shed: n - admit,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AccuracyTable {
        AccuracyTable::new(
            SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
            vec![0.90, 0.93, 0.94, 0.95],
        )
    }

    #[test]
    fn slicing_serves_everything_within_latency() {
        let t = table();
        // 100 queries, 1ms each full, 25ms budget → r² ≤ 0.25 → r = 0.5,
        // per-query 0.25ms → all 100 fit exactly.
        let d = Policy::ModelSlicing.decide(100, 0.001, 0.025, &t);
        assert_eq!(d.served, 100);
        assert_eq!(d.shed, 0);
        assert_eq!(d.rate, Some(0.5));
        assert!((d.effective_accuracy - 0.93).abs() < 1e-12);
        assert!(d.time_spent <= 0.025 + 1e-12);
    }

    #[test]
    fn fixed_full_sheds_under_load() {
        let t = table();
        let d = Policy::FixedFull.decide(100, 0.001, 0.025, &t);
        assert_eq!(d.served, 25);
        assert_eq!(d.shed, 75);
        assert!(d.effective_accuracy < 0.25);
    }

    #[test]
    fn fixed_full_wins_when_idle() {
        let t = table();
        let d_full = Policy::FixedFull.decide(5, 0.001, 0.025, &t);
        let d_slice = Policy::ModelSlicing.decide(5, 0.001, 0.025, &t);
        // Low load: slicing also picks the full model — no accuracy loss.
        assert_eq!(d_full.effective_accuracy, d_slice.effective_accuracy);
        assert_eq!(d_slice.rate, Some(1.0));
    }

    #[test]
    fn swap_degrades_to_cheap_model() {
        let t = table();
        let p = Policy::ModelSwap {
            rel_cost: 0.05,
            accuracy: 0.85,
        };
        let d = p.decide(100, 0.001, 0.025, &t);
        assert_eq!(d.served, 100);
        assert!((d.effective_accuracy - 0.85).abs() < 1e-12);
        // But under light load it serves at full accuracy.
        let d = p.decide(5, 0.001, 0.025, &t);
        assert_eq!(d.effective_accuracy, 0.95);
    }

    #[test]
    fn slicing_beats_coarse_policies_under_surge() {
        let t = table();
        let budget = 0.025;
        let n = 200; // extreme spike
        let slice = Policy::ModelSlicing.decide(n, 0.001, budget, &t);
        let full = Policy::FixedFull.decide(n, 0.001, budget, &t);
        let drop = Policy::DropCandidates.decide(n, 0.001, budget, &t);
        assert!(slice.effective_accuracy > full.effective_accuracy);
        assert!(slice.effective_accuracy > drop.effective_accuracy);
    }

    #[test]
    fn empty_batch_is_free() {
        let t = table();
        let d = Policy::ModelSlicing.decide(0, 0.001, 0.025, &t);
        assert_eq!(d.time_spent, 0.0);
        assert_eq!(d.served, 0);
    }

    fn quad_controller(policy: RatePolicy) -> SlaController {
        SlaController::new(
            LatencyProfile::quadratic(
                SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
                1e-3,
            ),
            policy,
        )
    }

    #[test]
    fn sla_elastic_matches_the_synthetic_policy_on_the_quadratic_law() {
        let c = quad_controller(RatePolicy::Elastic);
        // Same setting as `slicing_serves_everything_within_latency`.
        let d = c.decide(100, 0.025);
        assert_eq!(d.rate.get(), 0.5);
        assert_eq!(d.admit, 100);
        assert_eq!(d.shed, 0);
        // Idle → full width.
        assert!(c.decide(5, 0.025).rate.is_full());
    }

    #[test]
    fn sla_elastic_sheds_rather_than_violating_the_deadline() {
        let c = quad_controller(RatePolicy::Elastic);
        // 1000 queries: even r_min (0.25² ms each) cannot fit 25 ms.
        let d = c.decide(1000, 0.025);
        assert_eq!(d.rate.get(), 0.25);
        assert_eq!(d.admit, 400);
        assert_eq!(d.shed, 600);
        assert!(c.profile().predict(d.admit, d.rate) <= 0.025 + 1e-12);
    }

    #[test]
    fn sla_fixed_never_sheds_and_fixed_shedding_never_overruns() {
        let full = SliceRate::FULL;
        let d = quad_controller(RatePolicy::Fixed(full)).decide(1000, 0.025);
        assert_eq!((d.admit, d.shed), (1000, 0));
        let c = quad_controller(RatePolicy::FixedShedding(full));
        let d = c.decide(1000, 0.025);
        assert_eq!((d.admit, d.shed), (25, 975));
        assert!(c.profile().predict(d.admit, d.rate) <= 0.025 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "not in the calibrated list")]
    fn sla_rejects_uncalibrated_fixed_rate() {
        quad_controller(RatePolicy::Fixed(SliceRate::new(0.33)));
    }
}
