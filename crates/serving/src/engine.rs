//! The multi-threaded elastic inference engine.
//!
//! This is the real version of the story the simulator only sketches: actual
//! forward passes through the sliced network, on actual OS threads, with the
//! slice rate chosen per batch by an [`SlaController`] planning against a
//! *measured* [`LatencyProfile`](crate::profile::LatencyProfile).
//!
//! # Threading model
//!
//! - **One model replica per worker.** `forward` needs `&mut self` (slice
//!   bookkeeping, workspaces), so workers never share a model. Each worker
//!   owns a replica hydrated from the same
//!   [`SharedWeights`](ms_nn::shared::SharedWeights) snapshot, plus its own
//!   thread-local buffer pool and layer workspaces — the zero-allocation
//!   steady state of PR 1, replicated per thread.
//! - **Queue ownership.** All mutable queue state (`open` accumulation
//!   batch, `ready` sealed batches, in-flight count, response log) lives in
//!   one mutex; two condvars signal it (`work`: a batch became ready,
//!   `idle`: a batch finished). Whoever drives time owns sealing: the replay
//!   loop in tests and experiments, a timer thread in live serving, the soak
//!   test's dedicated sealer thread.
//! - **Shedding policy.** Two gates, both counted: *backpressure* at
//!   [`Engine::submit`] when the queue already holds `max_queue` requests
//!   (the engine is not allowed to buffer itself into deadline violations),
//!   and *admission* at [`Engine::seal`] when the controller decides even
//!   the base rate cannot serve the whole batch within the budget — the
//!   overflow tail is shed rather than served late.
//!
//! # Determinism
//!
//! Batch composition (one batch per seal), the chosen rate (a pure function
//! of batch size and budget), and per-row kernel results (fixed-order
//! accumulators; a row's output is independent of its batch companions) are
//! all independent of worker count and scheduling. Replaying one trace on 1
//! worker and on N workers therefore produces bitwise-identical logits per
//! request — a hard guarantee, locked in by `tests/engine_determinism.rs`.

use crate::controller::{SlaController, SlaDecision};
use crate::workload::WorkloadTrace;
use ms_core::inference::{batched_sliced_forward, refine_batched_forward};
use ms_core::slice_rate::SliceRate;
use ms_nn::layer::Layer;
use ms_telemetry::flight;
use ms_telemetry::{Counter, Gauge, Histogram};
use ms_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monotone per-process engine id, used as the `engine` label so several
/// engines (tests spin up many) keep distinct registry series.
static ENGINE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Indices into [`EngineMetrics::shed_reason`].
const SHED_BACKPRESSURE: usize = 0;
const SHED_ADMISSION: usize = 1;
const SHED_STOPPING: usize = 2;
const SHED_REASON_NAMES: [&str; 3] = ["backpressure", "admission", "stopping"];

/// Registry handles for one engine instance. All series carry an
/// `engine="<n>"` label; per-rate series add `rate="<r>"`, indexed like
/// the controller profile's rate list so the record path is a direct
/// vector index — no lookup, no allocation, no lock.
struct EngineMetrics {
    submitted: Counter,
    served: Counter,
    shed: Counter,
    /// Per-reason shed counters (`reason` label), indexed by the
    /// `SHED_REASON_*` constants. `shed` above stays the aggregate.
    shed_reason: [Counter; 3],
    batches: Counter,
    /// Slice rate the controller chose for the most recently sealed batch
    /// (0 before the first seal) — the "current controller rate" the
    /// health endpoint reports.
    last_rate: Gauge,
    /// Requests buffered (open batch + sealed-but-unstarted). Updated at
    /// batch granularity — on seal and on worker pop, not per submit — so
    /// the per-request hot path pays no gauge store; a scraper sees the
    /// depth as of the last batch boundary.
    queue_depth: Gauge,
    /// Admitted size of the last sealed batch as a fraction of the largest
    /// batch the chosen rate could serve within the planning budget.
    batch_fill: Gauge,
    /// Batches per candidate rate (the old `rate_counts` atomics).
    rate_batches: Vec<Counter>,
    /// Measured batch service seconds per candidate rate.
    rate_service: Vec<Histogram>,
    /// Measured batch service seconds across all rates — the histogram
    /// behind [`EngineCounters::p50_service`]/[`p99_service`].
    service: Histogram,
    /// Requests lifted to a wider rate by the anytime refinement ladder
    /// (one increment per request per ladder step).
    refined: Counter,
}

impl EngineMetrics {
    fn new(controller: &SlaController) -> EngineMetrics {
        let reg = ms_telemetry::global();
        let id = ENGINE_SEQ.fetch_add(1, Ordering::Relaxed).to_string();
        let e: &[(&str, &str)] = &[("engine", id.as_str())];
        let mut rate_batches = Vec::new();
        let mut rate_service = Vec::new();
        for r in controller.profile().list().iter() {
            let rs = format!("{r}");
            let labels: &[(&str, &str)] = &[("engine", id.as_str()), ("rate", rs.as_str())];
            rate_batches.push(reg.counter_with(
                "engine_rate_batches_total",
                labels,
                "batches served at each slice rate",
            ));
            rate_service.push(reg.histogram_with(
                "engine_service_seconds",
                labels,
                "measured wall-clock batch service time per slice rate",
            ));
        }
        EngineMetrics {
            submitted: reg.counter_with(
                "engine_submitted_total",
                e,
                "requests offered to submit (accepted + shed)",
            ),
            served: reg.counter_with("engine_served_total", e, "requests served (logits produced)"),
            shed: reg.counter_with(
                "engine_shed_total",
                e,
                "requests shed (backpressure + admission control)",
            ),
            shed_reason: SHED_REASON_NAMES.map(|reason| {
                reg.counter_with(
                    "engine_shed_reason_total",
                    &[("engine", id.as_str()), ("reason", reason)],
                    "requests shed, by reason",
                )
            }),
            batches: reg.counter_with("engine_batches_total", e, "batches executed"),
            last_rate: reg.gauge_with(
                "engine_last_rate",
                e,
                "slice rate chosen for the most recently sealed batch",
            ),
            queue_depth: reg.gauge_with(
                "engine_queue_depth",
                e,
                "requests buffered: open batch + sealed not yet running",
            ),
            batch_fill: reg.gauge_with(
                "engine_batch_fill",
                e,
                "last sealed batch size over the chosen rate's budget capacity",
            ),
            rate_batches,
            rate_service,
            service: reg.histogram_with(
                "engine_service_seconds",
                &[("engine", id.as_str()), ("rate", "all")],
                "measured wall-clock batch service time, all rates",
            ),
            refined: reg.counter_with(
                "engine_refined_total",
                e,
                "requests lifted to a wider rate by anytime refinement (per ladder step)",
            ),
        }
    }
}

/// Engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The SLA: worst-case latency `T` in seconds. Batches accumulate for
    /// `T/2` and must be processed within the remaining `T/2` (§4.1).
    pub latency: f64,
    /// Fraction of the `T/2` processing budget the controller plans to
    /// (planning to 100 % leaves no room for measurement jitter; the
    /// remaining fraction is the deadline safety margin).
    pub headroom: f64,
    /// Maximum requests buffered (accumulating + sealed, not yet running)
    /// before `submit` sheds — backpressure instead of unbounded queueing.
    pub max_queue: usize,
    /// Anytime refinement: after a batch's planned pass completes, workers
    /// keep lifting it to wider rates through the incremental prefix path
    /// while the profile predicts the *marginal* cost still fits before the
    /// batch deadline. Off by default — with it on, the served rate depends
    /// on measured wall-clock time, so runs are no longer bit-reproducible
    /// across machines (each step's logits still are).
    pub refine: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            latency: 0.04,
            headroom: 0.7,
            max_queue: 4096,
            refine: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue is full.
    Backpressure,
    /// The engine is shutting down.
    Stopping,
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// Submission id (monotone in submission order).
    pub id: u64,
    /// The network's logits for this request.
    pub logits: Tensor,
    /// Slice rate the request was served at.
    pub rate: f32,
    /// Sequence number of the batch that carried it.
    pub batch_seq: usize,
    /// Measured wall-clock service time of that whole batch (seconds).
    pub service_time: f64,
    /// Flight-recorder trace id the request was submitted with (0 =
    /// untraced).
    pub trace_id: u64,
}

/// Aggregate engine counters, exposed for the experiments binaries.
///
/// Since PR 3 this is a façade over the engine's series on the global
/// `ms-telemetry` registry (labeled `engine="<n>"`): the same numbers the
/// Prometheus/JSON dumps carry, snapshotted into the struct the
/// experiments binaries already consume. Percentiles come from the shared
/// log-bucketed histogram, so they are resolved to one bucket width
/// (≤ ~6 % relative) rather than exact order statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineCounters {
    /// Requests offered to `submit` (accepted + shed).
    pub submitted: u64,
    /// Requests served (logits produced).
    pub served: u64,
    /// Requests shed (backpressure + admission control).
    pub shed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests lifted to a wider rate by the anytime refinement ladder
    /// (one per request per ladder step; 0 unless `EngineConfig::refine`).
    pub refined: u64,
    /// `(rate, batches run at that rate)`, ascending.
    pub rate_histogram: Vec<(f32, u64)>,
    /// Median measured batch service time (seconds; 0 when no batches
    /// ran), bucket-resolution.
    pub p50_service: f64,
    /// 99th-percentile measured batch service time, bucket-resolution.
    pub p99_service: f64,
}

struct WorkBatch {
    seq: usize,
    ids: Vec<u64>,
    /// Trace id per request, parallel to `ids` (0 = untraced).
    traces: Vec<u64>,
    inputs: Vec<Tensor>,
    rate: SliceRate,
    /// Wall-clock instant the batch's processing window closes (seal time
    /// plus the window that produced its planning budget). The refinement
    /// ladder climbs only while predicted marginal cost fits before this.
    deadline: Instant,
}

struct EngineState {
    open_ids: Vec<u64>,
    /// Trace id per open request, parallel to `open_ids`.
    open_traces: Vec<u64>,
    open_inputs: Vec<Tensor>,
    /// Tightest per-request planning budget among the open requests
    /// (`+inf` when none carries a deadline). A request submitted with a
    /// deadline tighter than the engine's configured SLA pulls the whole
    /// batch's planning budget down to its own — the controller then picks
    /// a narrower rate (or sheds) so the most urgent request still fits.
    open_budget_min: f64,
    ready: VecDeque<WorkBatch>,
    /// Requests inside `ready` (kept incrementally for the backpressure gate).
    ready_len: usize,
    in_flight: usize,
    next_seq: usize,
    /// Completed requests keyed by submission id — keyed delivery for the
    /// network front-end; [`Engine::take_responses`] drains it in id order.
    responses: HashMap<u64, EngineResponse>,
    /// Ids shed by admission control at [`Engine::seal`]. Unlike
    /// backpressure (which fails `submit` synchronously), admission
    /// shedding happens after the caller already holds an id, so consumers
    /// that promised a reply per id (the TCP server) collect these from
    /// [`Engine::take_shed_ids`] / [`Engine::wait_events`].
    shed_ids: Vec<u64>,
    /// While set, workers leave `ready` untouched — the replay harness
    /// stages every batch first so its service-time measurements never
    /// share the CPU with the submission loop (single-core machines).
    hold: bool,
    stop: bool,
    /// Submit-path tallies kept as plain integers under the state lock and
    /// flushed to the registry counters at seal (and on `counters()`).
    /// `submit` runs once per request; a lock-prefixed `fetch_add` there is
    /// the single biggest telemetry cost on the serving hot path, while a
    /// plain `+= 1` under the already-held mutex is free.
    pending_submitted: u64,
    /// Synchronous-refusal tallies by reason (backpressure, stopping);
    /// admission sheds are counted directly at seal.
    pending_shed_backpressure: u64,
    pending_shed_stopping: u64,
}

struct Shared {
    state: Mutex<EngineState>,
    work: Condvar,
    idle: Condvar,
    controller: SlaController,
    /// The deadline window `T/2` — batches must process inside it (§4.1).
    window: f64,
    /// Planning budget: `window × headroom` (the margin the controller sees).
    budget: f64,
    /// The configured headroom fraction, kept so per-request deadlines map
    /// to planning budgets the same way the engine-wide SLA does.
    headroom: f64,
    max_queue: usize,
    /// Anytime refinement ladder enabled (see [`EngineConfig::refine`]).
    refine: bool,
    metrics: EngineMetrics,
}

/// The worker-pool engine. See the module docs for the threading model.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Starts one worker thread per replica. Replicas must be structurally
    /// identical and hydrated from the same weights for the determinism
    /// guarantee to hold (e.g. via [`ms_nn::shared::SharedWeights`]).
    pub fn start(
        cfg: EngineConfig,
        controller: SlaController,
        replicas: Vec<Box<dyn Layer + Send>>,
    ) -> Engine {
        assert!(!replicas.is_empty(), "need at least one worker replica");
        assert!(cfg.latency > 0.0 && cfg.headroom > 0.0 && cfg.headroom <= 1.0);
        let metrics = EngineMetrics::new(&controller);
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                open_ids: Vec::new(),
                open_traces: Vec::new(),
                open_inputs: Vec::new(),
                open_budget_min: f64::INFINITY,
                ready: VecDeque::new(),
                ready_len: 0,
                in_flight: 0,
                next_seq: 0,
                responses: HashMap::new(),
                shed_ids: Vec::new(),
                hold: false,
                stop: false,
                pending_submitted: 0,
                pending_shed_backpressure: 0,
                pending_shed_stopping: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            controller,
            window: cfg.latency / 2.0,
            budget: cfg.latency / 2.0 * cfg.headroom,
            headroom: cfg.headroom,
            max_queue: cfg.max_queue,
            refine: cfg.refine,
            metrics,
        });
        let workers = replicas
            .into_iter()
            .enumerate()
            .map(|(i, model)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ms-worker-{i}"))
                    .spawn(move || worker_loop(shared, i, model))
                    .expect("spawn worker")
            })
            .collect();
        Engine {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The controller in use.
    pub fn controller(&self) -> &SlaController {
        &self.shared.controller
    }

    /// Offers one request to the open batch. Sheds (and counts the shed)
    /// under backpressure instead of buffering beyond `max_queue`.
    pub fn submit(&self, input: Tensor) -> Result<u64, ShedReason> {
        self.submit_with_deadline(input, None)
    }

    /// [`Engine::submit`] with an optional per-request SLA: `deadline` is
    /// this request's own end-to-end latency bound `T_i` in seconds,
    /// overriding the engine-wide `EngineConfig::latency` when tighter. The
    /// request's planning budget is `(T_i/2) · headroom` — the same mapping
    /// the engine default goes through — and the batch it lands in plans
    /// against the tightest budget of its members. Deadlines looser than
    /// the engine default do not relax the batch (the engine still owes its
    /// configured SLA to every other member).
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        deadline: Option<f64>,
    ) -> Result<u64, ShedReason> {
        self.submit_traced(input, deadline, 0)
    }

    /// [`Engine::submit_with_deadline`] carrying a flight-recorder trace
    /// id (0 = untraced). When the recorder is on, `Admitted` and
    /// `Enqueued` events are stamped on the way into the open batch.
    pub fn submit_traced(
        &self,
        input: Tensor,
        deadline: Option<f64>,
        trace_id: u64,
    ) -> Result<u64, ShedReason> {
        self.submit_or_return(input, deadline, trace_id)
            .map_err(|(reason, t)| {
                t.recycle();
                reason
            })
    }

    /// [`Engine::submit_traced`] that hands the input back on refusal, so
    /// a router can fail the same tensor over to another replica without
    /// copying it. The flight recorder's `Shed` event is *not* stamped on
    /// refusal — the caller owns it, because a refusal here may still be
    /// served by a failover replica.
    pub fn submit_or_return(
        &self,
        input: Tensor,
        deadline: Option<f64>,
        trace_id: u64,
    ) -> Result<u64, (ShedReason, Tensor)> {
        let mut st = self.shared.state.lock().expect("engine lock");
        st.pending_submitted += 1;
        if st.stop {
            st.pending_shed_stopping += 1;
            return Err((ShedReason::Stopping, input));
        }
        if st.open_ids.len() + st.ready_len >= self.shared.max_queue {
            st.pending_shed_backpressure += 1;
            return Err((ShedReason::Backpressure, input));
        }
        flight::admitted(trace_id);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        st.open_ids.push(id);
        st.open_traces.push(trace_id);
        st.open_inputs.push(input);
        if let Some(t) = deadline {
            if t.is_finite() && t > 0.0 {
                let budget = t / 2.0 * self.shared.headroom;
                st.open_budget_min = st.open_budget_min.min(budget);
            }
        }
        flight::enqueued(trace_id);
        Ok(id)
    }

    /// Closes the open batch: the controller picks the rate and admission,
    /// the admitted prefix becomes a work item, the overflow tail is shed.
    /// Returns the sealed batch's sequence number, or `None` when the open
    /// batch was empty or fully shed.
    pub fn seal(&self) -> Option<usize> {
        let mut st = self.shared.state.lock().expect("engine lock");
        self.flush_submit_tallies(&mut st);
        let n = st.open_ids.len();
        if n == 0 {
            return None;
        }
        // The batch honours the tightest deadline among its members: the
        // engine-wide budget unless some request asked for less.
        let budget = self.shared.budget.min(st.open_budget_min);
        st.open_budget_min = f64::INFINITY;
        let SlaDecision { rate, admit, shed } = self.shared.controller.decide(n, budget);
        self.shared.metrics.last_rate.set(rate.get() as f64);
        let mut ids = std::mem::take(&mut st.open_ids);
        let mut traces = std::mem::take(&mut st.open_traces);
        let mut inputs = std::mem::take(&mut st.open_inputs);
        if shed > 0 {
            let dropped = ids.split_off(admit);
            let dropped_traces = traces.split_off(admit);
            for t in inputs.split_off(admit) {
                t.recycle();
            }
            st.shed_ids.extend(dropped);
            self.shared.metrics.shed.add(shed as u64);
            self.shared.metrics.shed_reason[SHED_ADMISSION].add(shed as u64);
            if flight::recording() {
                for &tr in &dropped_traces {
                    flight::shed(tr, flight::ShedCause::Admission);
                }
            }
        }
        if admit == 0 {
            self.shared.metrics.queue_depth.set(st.ready_len as f64);
            drop(st);
            // Admission-shed ids are events too: wake keyed waiters.
            self.shared.idle.notify_all();
            return None;
        }
        let capacity = self
            .shared
            .controller
            .profile()
            .max_batch(rate, budget);
        let fill = admit as f64 / capacity.max(1) as f64;
        self.shared.metrics.batch_fill.set(fill);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.ready_len += admit;
        if flight::recording() {
            for &tr in &traces {
                flight::sealed_into_batch(tr, seq as u64, rate.get(), fill as f32);
            }
        }
        // The processing window behind this batch's planning budget: the
        // engine SLA's T/2, or the tightest member deadline's T_i/2.
        let deadline = Instant::now() + Duration::from_secs_f64(budget / self.shared.headroom);
        st.ready.push_back(WorkBatch {
            seq,
            ids,
            traces,
            inputs,
            rate,
            deadline,
        });
        self.shared.metrics.queue_depth.set(st.ready_len as f64);
        drop(st);
        self.shared.work.notify_one();
        if shed > 0 {
            self.shared.idle.notify_all();
        }
        Some(seq)
    }

    /// Publishes the submit-path tallies to the registry counters.
    fn flush_submit_tallies(&self, st: &mut EngineState) {
        if st.pending_submitted > 0 {
            let n = std::mem::take(&mut st.pending_submitted);
            self.shared.metrics.submitted.add(n);
        }
        if st.pending_shed_backpressure > 0 {
            let n = std::mem::take(&mut st.pending_shed_backpressure);
            self.shared.metrics.shed.add(n);
            self.shared.metrics.shed_reason[SHED_BACKPRESSURE].add(n);
        }
        if st.pending_shed_stopping > 0 {
            let n = std::mem::take(&mut st.pending_shed_stopping);
            self.shared.metrics.shed.add(n);
            self.shared.metrics.shed_reason[SHED_STOPPING].add(n);
        }
    }

    /// Blocks until the queue is empty and no batch is in flight. The open
    /// (unsealed) batch is not waited on — seal first.
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("engine lock");
        while !st.ready.is_empty() || st.in_flight > 0 {
            st = self.shared.idle.wait(st).expect("engine lock");
        }
    }

    /// Takes all responses accumulated since the last call, in submission-id
    /// order. Thin wrapper over the keyed store — consumers that know the id
    /// they are waiting for should use [`Engine::take_response`] instead of
    /// scanning this list.
    pub fn take_responses(&self) -> Vec<EngineResponse> {
        let mut st = self.shared.state.lock().expect("engine lock");
        let mut out: Vec<EngineResponse> = st.responses.drain().map(|(_, r)| r).collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Takes the response for one submission id, if it has completed.
    pub fn take_response(&self, id: u64) -> Option<EngineResponse> {
        let mut st = self.shared.state.lock().expect("engine lock");
        st.responses.remove(&id)
    }

    /// Takes the ids shed by admission control at [`Engine::seal`] since the
    /// last call (backpressure sheds fail `submit` synchronously and never
    /// appear here).
    pub fn take_shed_ids(&self) -> Vec<u64> {
        let mut st = self.shared.state.lock().expect("engine lock");
        std::mem::take(&mut st.shed_ids)
    }

    /// Blocks until at least one completion event (response or
    /// admission-shed id) is available, or `timeout` elapses; drains and
    /// returns everything pending. The network front-end's per-engine
    /// dispatcher thread lives on this call.
    pub fn wait_events(&self, timeout: Duration) -> (Vec<EngineResponse>, Vec<u64>) {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("engine lock");
        while st.responses.is_empty() && st.shed_ids.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return (Vec::new(), Vec::new());
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(st, deadline - now)
                .expect("engine lock");
            st = guard;
        }
        let mut responses: Vec<EngineResponse> = st.responses.drain().map(|(_, r)| r).collect();
        responses.sort_by_key(|r| r.id);
        let shed = std::mem::take(&mut st.shed_ids);
        (responses, shed)
    }

    /// The batching window `T/2` in seconds (half the configured SLA).
    pub fn window(&self) -> f64 {
        self.shared.window
    }

    /// The configured headroom fraction.
    pub fn headroom(&self) -> f64 {
        self.shared.headroom
    }

    /// Counter snapshot from the telemetry registry (percentiles come from
    /// the shared log-bucketed service-time histogram, resolved to one
    /// bucket width).
    pub fn counters(&self) -> EngineCounters {
        {
            let mut st = self.shared.state.lock().expect("engine lock");
            self.flush_submit_tallies(&mut st);
        }
        let m = &self.shared.metrics;
        let list = self.shared.controller.profile().list();
        EngineCounters {
            submitted: m.submitted.get(),
            served: m.served.get(),
            shed: m.shed.get(),
            batches: m.batches.get(),
            refined: m.refined.get(),
            rate_histogram: list
                .iter()
                .zip(&m.rate_batches)
                .map(|(r, c)| (r.get(), c.get()))
                .filter(|(_, c)| *c > 0)
                .collect(),
            p50_service: m.service.percentile(0.50),
            p99_service: m.service.percentile(0.99),
        }
    }

    /// Current queue-depth gauge (open batch + sealed-but-unstarted).
    pub fn queue_depth(&self) -> f64 {
        self.shared.metrics.queue_depth.get()
    }

    /// Handle to the all-rates service-time histogram (the series behind
    /// [`EngineCounters::p50_service`]/[`p99_service`]). Consumers that
    /// need *windowed* rather than lifetime-cumulative percentiles — the
    /// router's health score, the server's SLO block — wrap this in a
    /// `ms_telemetry::WindowedHistogram` and difference bucket snapshots
    /// at their own cadence.
    ///
    /// [`p99_service`]: EngineCounters::p99_service
    pub fn service_histogram(&self) -> ms_telemetry::Histogram {
        self.shared.metrics.service.clone()
    }

    /// Slice rate picked by the controller for the most recently sealed
    /// batch (0 until the first seal).
    pub fn last_rate(&self) -> f32 {
        self.shared.metrics.last_rate.get() as f32
    }

    /// Per-rate `(rate, p50 seconds, p99 seconds)` from the measured
    /// service-time histograms, for rates that ran at least one batch.
    pub fn rate_service_percentiles(&self) -> Vec<(f32, f64, f64)> {
        let list = self.shared.controller.profile().list();
        list.iter()
            .zip(&self.shared.metrics.rate_service)
            .filter(|(_, h)| h.count() > 0)
            .map(|(r, h)| (r.get(), h.percentile(0.50), h.percentile(0.99)))
            .collect()
    }

    /// Pauses (`true`) or releases (`false`) the ready queue. Used by
    /// [`Engine::replay`] to stage every batch before measurement starts.
    fn set_hold(&self, hold: bool) {
        let mut st = self.shared.state.lock().expect("engine lock");
        st.hold = hold;
        drop(st);
        if !hold {
            self.shared.work.notify_all();
        }
    }

    /// Stops the workers and joins them. Queued batches are abandoned;
    /// callers that care should [`Engine::drain`] first.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("engine lock");
            st.stop = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, worker: usize, mut model: Box<dyn Layer + Send>) {
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("engine lock");
            loop {
                if !st.hold {
                    if let Some(b) = st.ready.pop_front() {
                        st.ready_len -= b.ids.len();
                        st.in_flight += 1;
                        shared
                            .metrics
                            .queue_depth
                            .set((st.open_ids.len() + st.ready_len) as f64);
                        break b;
                    }
                }
                if st.stop {
                    return;
                }
                st = shared.work.wait(st).expect("engine lock");
            }
        };
        if flight::recording() {
            for &tr in &batch.traces {
                flight::dispatch_start(tr, worker as u64);
            }
        }
        let t0 = Instant::now();
        let mut rate = batch.rate;
        let mut rows;
        if shared.refine {
            // Prefix path: the planned pass establishes each layer's cached
            // prefix activations so later ladder steps compute only the
            // delta panels.
            rows = Vec::new();
            {
                let _span = ms_telemetry::span!("engine.batch_forward");
                refine_batched_forward(model.as_mut(), &batch.inputs, None, rate, &mut rows);
            }
            if flight::recording() {
                for &tr in &batch.traces {
                    flight::compute_done(tr);
                }
            }
            // Anytime ladder: climb while the profile predicts the marginal
            // cost of the next step still fits before the batch deadline.
            // Prediction deltas (not fresh-pass costs) are the right charge
            // because the prefix path reuses everything below `rate`.
            let n = batch.inputs.len();
            let profile = shared.controller.profile();
            while let Some(next) = profile.list().next_above(rate) {
                let marginal = profile.predict(n, next) - profile.predict(n, rate);
                let fits = Instant::now()
                    .checked_add(Duration::from_secs_f64(marginal.max(0.0)))
                    .is_some_and(|eta| eta <= batch.deadline);
                if !fits {
                    break;
                }
                {
                    let _span = ms_telemetry::span!("engine.batch_refine");
                    refine_batched_forward(
                        model.as_mut(),
                        &batch.inputs,
                        Some(rate),
                        next,
                        &mut rows,
                    );
                }
                shared.metrics.refined.add(n as u64);
                if flight::recording() {
                    for &tr in &batch.traces {
                        flight::refine_step(tr, rate.get(), next.get());
                    }
                }
                rate = next;
            }
        } else {
            rows = {
                let _span = ms_telemetry::span!("engine.batch_forward");
                batched_sliced_forward(model.as_mut(), &batch.inputs, batch.rate)
            };
            if flight::recording() {
                for &tr in &batch.traces {
                    flight::compute_done(tr);
                }
            }
        }
        let service = t0.elapsed().as_secs_f64();
        for input in batch.inputs {
            input.recycle();
        }
        shared.metrics.served.add(batch.ids.len() as u64);
        shared.metrics.batches.inc();
        shared.metrics.service.record(service);
        if let Some(idx) = shared.controller.profile().list().index_of(rate) {
            shared.metrics.rate_batches[idx].inc();
            shared.metrics.rate_service[idx].record(service);
        }
        let mut st = shared.state.lock().expect("engine lock");
        for ((id, trace_id), logits) in batch
            .ids
            .into_iter()
            .zip(batch.traces)
            .zip(rows)
        {
            st.responses.insert(
                id,
                EngineResponse {
                    id,
                    logits,
                    rate: rate.get(),
                    batch_seq: batch.seq,
                    service_time: service,
                    trace_id,
                },
            );
        }
        st.in_flight -= 1;
        drop(st);
        shared.idle.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Trace replay: the Policy/Simulator workloads, through the real engine.
// ---------------------------------------------------------------------------

/// Outcome of replaying one workload trace through a real engine.
///
/// Latency accounting is hybrid: arrivals advance on a *virtual* clock (one
/// tick = one `T/2` interval, as in the simulator) while service times are
/// the *measured* wall-clock durations of the real forward passes. Batches
/// are then scheduled onto the worker pool's virtual timeline in sealing
/// order, so a replay is reproducible and much faster than real time yet its
/// deadline verdicts reflect real compute.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests in the trace.
    pub arrived: usize,
    /// Requests that produced logits.
    pub served: usize,
    /// Requests shed (admission control + backpressure).
    pub shed: usize,
    /// Served requests whose queue-wait + measured service fit the `T/2`
    /// processing window (total latency ≤ `T` counting accumulation).
    pub on_time: usize,
    /// Served requests that finished late.
    pub late: usize,
    /// Median per-request latency (wait + service, seconds) over served
    /// requests.
    pub p50_latency: f64,
    /// 99th-percentile per-request latency.
    pub p99_latency: f64,
    /// All responses, sorted by request id.
    pub responses: Vec<EngineResponse>,
    /// Engine counter snapshot taken after the replay drained.
    pub counters: EngineCounters,
}

impl Engine {
    /// Replays a workload trace: per tick, submits that tick's arrivals
    /// (inputs produced by `input_for(id)`) and seals the batch; then
    /// releases the worker pool, drains, and scores deadlines on the
    /// virtual timeline described on [`ReplayReport`].
    ///
    /// All batches are staged on a *paused* queue before any worker runs:
    /// batch composition and rate selection are identical to concurrent
    /// execution (both are fixed at seal time), but the measured service
    /// times never time-share the CPU with the submission loop — on a
    /// single-core machine, concurrent submission would bill the workers
    /// for the replay harness's own tensor construction.
    ///
    /// Must run on a freshly started (or fully drained and
    /// response-emptied) engine.
    pub fn replay(
        &self,
        trace: &WorkloadTrace,
        mut input_for: impl FnMut(u64) -> Tensor,
    ) -> ReplayReport {
        // The deadline window is the full T/2, not the headroom-scaled
        // planning budget: headroom is margin, not a tighter SLA.
        let window = self.shared.window;
        self.set_hold(true);
        let mut batch_tick: Vec<(usize, usize)> = Vec::new(); // (seq, tick)
        let mut arrived = 0usize;
        for (tick, &n) in trace.arrivals.iter().enumerate() {
            arrived += n;
            for _ in 0..n {
                let id = self.next_id.load(Ordering::Relaxed);
                let _ = self.submit(input_for(id));
            }
            if let Some(seq) = self.seal() {
                batch_tick.push((seq, tick));
            }
        }
        self.set_hold(false);
        self.drain();
        let mut responses = self.take_responses();
        responses.sort_by_key(|r| r.id);

        // Virtual timeline: batches start in sealing order on the earliest
        // virtually-free worker, never before their formation tick closed.
        let tick_of: std::collections::HashMap<usize, usize> = batch_tick.into_iter().collect();
        let mut batches: Vec<(usize, f64, usize)> = Vec::new(); // (seq, service, size)
        {
            let mut seen: std::collections::HashMap<usize, (f64, usize)> =
                std::collections::HashMap::new();
            for r in &responses {
                let e = seen.entry(r.batch_seq).or_insert((r.service_time, 0));
                e.1 += 1;
            }
            for (seq, (service, size)) in seen {
                batches.push((seq, service, size));
            }
            batches.sort_by_key(|&(seq, _, _)| seq);
        }
        let mut free_at = vec![0.0f64; self.workers.len().max(1)];
        let mut on_time = 0usize;
        let mut late = 0usize;
        let mut latencies: Vec<f64> = Vec::with_capacity(responses.len());
        for (seq, service, size) in batches {
            let tick = tick_of.get(&seq).copied().unwrap_or(0);
            let ready = (tick as f64 + 1.0) * window;
            let w = free_at
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty pool");
            let start = free_at[w].max(ready);
            let done = start + service;
            free_at[w] = done;
            let latency = done - ready;
            for _ in 0..size {
                latencies.push(latency);
            }
            if latency <= window {
                on_time += size;
            } else {
                late += size;
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pct = |q: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                latencies[((latencies.len() - 1) as f64 * q).round() as usize]
            }
        };
        let counters = self.counters();
        ReplayReport {
            arrived,
            served: responses.len(),
            shed: arrived - responses.len(),
            on_time,
            late,
            p50_latency: pct(0.50),
            p99_latency: pct(0.99),
            responses,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RatePolicy;
    use crate::profile::LatencyProfile;
    use crate::workload::WorkloadConfig;
    use ms_core::slice_rate::SliceRateList;
    use ms_nn::linear::{Linear, LinearConfig};
    use ms_nn::sequential::Sequential;
    use ms_nn::shared::SharedWeights;
    use ms_tensor::SeededRng;

    fn replica(weights: &SharedWeights) -> Box<dyn Layer + Send> {
        let mut rng = SeededRng::new(999);
        let mut net = Sequential::new("net")
            .push(Linear::new(
                "fc1",
                LinearConfig {
                    in_dim: 8,
                    out_dim: 32,
                    in_groups: None,
                    out_groups: Some(4),
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            ))
            .push(Linear::new(
                "fc2",
                LinearConfig {
                    in_dim: 32,
                    out_dim: 4,
                    in_groups: Some(4),
                    out_groups: None,
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            ));
        weights.hydrate(&mut net);
        Box::new(net)
    }

    fn weights() -> SharedWeights {
        let mut proto = replica_uninit();
        SharedWeights::capture(proto.as_mut())
    }

    fn replica_uninit() -> Box<dyn Layer + Send> {
        let mut rng = SeededRng::new(5);
        Box::new(
            Sequential::new("net")
                .push(Linear::new(
                    "fc1",
                    LinearConfig {
                        in_dim: 8,
                        out_dim: 32,
                        in_groups: None,
                        out_groups: Some(4),
                        bias: true,
                        input_rescale: true,
                    },
                    &mut rng,
                ))
                .push(Linear::new(
                    "fc2",
                    LinearConfig {
                        in_dim: 32,
                        out_dim: 4,
                        in_groups: Some(4),
                        out_groups: None,
                        bias: true,
                        input_rescale: true,
                    },
                    &mut rng,
                )),
        )
    }

    fn engine(workers: usize, policy: RatePolicy) -> Engine {
        let w = weights();
        let profile = LatencyProfile::quadratic(
            SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
            1e-5,
        );
        Engine::start(
            EngineConfig {
                latency: 2e-3,
                headroom: 1.0,
                max_queue: 10_000,
                refine: false,
            },
            SlaController::new(profile, policy),
            (0..workers).map(|_| replica(&w)).collect(),
        )
    }

    #[test]
    fn submit_seal_drain_produces_one_response_per_request() {
        let e = engine(2, RatePolicy::Elastic);
        for _ in 0..10 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        assert!(e.seal().is_some());
        e.drain();
        let rs = e.take_responses();
        assert_eq!(rs.len(), 10);
        let mut ids: Vec<u64> = rs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        for r in &rs {
            assert_eq!(r.logits.dims(), &[4]);
            assert!(r.service_time > 0.0);
        }
        let c = e.counters();
        assert_eq!((c.submitted, c.served, c.shed, c.batches), (10, 10, 0, 1));
        e.shutdown();
    }

    #[test]
    fn empty_seal_is_a_noop_and_drain_returns_immediately() {
        let e = engine(1, RatePolicy::Elastic);
        assert!(e.seal().is_none());
        e.drain();
        assert_eq!(e.counters().batches, 0);
        e.shutdown();
    }

    #[test]
    fn overload_sheds_at_admission_and_within_budget() {
        // Quadratic profile, t_full 10µs, budget 1ms → r_min capacity
        // = 1ms / (0.0625·10µs) = 1600; offer 2000.
        let e = engine(2, RatePolicy::Elastic);
        for _ in 0..2000 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        e.seal();
        e.drain();
        let c = e.counters();
        assert_eq!(c.served, 1600);
        assert_eq!(c.shed, 400);
        assert_eq!(c.rate_histogram, vec![(0.25, 1)]);
        e.shutdown();
    }

    #[test]
    fn backpressure_sheds_when_the_queue_is_full() {
        let w = weights();
        let profile = LatencyProfile::quadratic(
            SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
            1e-5,
        );
        let e = Engine::start(
            EngineConfig {
                latency: 2e-3,
                headroom: 1.0,
                max_queue: 4,
                refine: false,
            },
            SlaController::elastic(profile),
            vec![replica(&w)],
        );
        let mut accepted = 0;
        let mut shed = 0;
        for _ in 0..10 {
            match e.submit(Tensor::zeros([8])) {
                Ok(_) => accepted += 1,
                Err(ShedReason::Backpressure) => shed += 1,
                Err(r) => panic!("unexpected {r:?}"),
            }
        }
        assert_eq!((accepted, shed), (4, 6));
        e.seal();
        e.drain();
        let c = e.counters();
        assert_eq!(c.submitted, 10);
        assert_eq!(c.served + c.shed, 10);
        e.shutdown();
    }

    #[test]
    fn replay_conserves_requests_and_reports_latencies() {
        let e = engine(3, RatePolicy::Elastic);
        let trace = crate::workload::WorkloadTrace::generate(&WorkloadConfig {
            ticks: 50,
            base_rate: 6.0,
            diurnal_amplitude: 2.0,
            diurnal_period: 25,
            spike_prob: 0.05,
            spike_multiplier: 10.0,
            spike_len: 5,
            seed: 11,
        });
        let r = e.replay(&trace, |id| {
            Tensor::full([8], (id % 17) as f32 * 0.1 - 0.8)
        });
        assert_eq!(r.arrived, trace.total());
        assert_eq!(r.served + r.shed, r.arrived);
        assert_eq!(r.on_time + r.late, r.served);
        assert_eq!(r.responses.len(), r.served);
        assert!(r.p99_latency >= r.p50_latency);
        // Elastic planning at full headroom keeps every batch's *predicted*
        // time within the window; measured times on this tiny net are far
        // below the 1 ms budget, so the replay should be essentially
        // all-on-time.
        assert!(r.late <= r.served / 10, "late {} of {}", r.late, r.served);
        e.shutdown();
    }

    #[test]
    fn fixed_policy_never_sheds_on_replay() {
        let e = engine(2, RatePolicy::Fixed(SliceRate::FULL));
        let trace = crate::workload::WorkloadTrace::generate(&WorkloadConfig {
            ticks: 30,
            base_rate: 20.0,
            ..WorkloadConfig::default()
        });
        let r = e.replay(&trace, |_| Tensor::zeros([8]));
        assert_eq!(r.shed, 0);
        assert_eq!(r.served, r.arrived);
        e.shutdown();
    }

    #[test]
    fn keyed_take_response_removes_exactly_one() {
        let e = engine(2, RatePolicy::Elastic);
        let ids: Vec<u64> = (0..6).map(|_| e.submit(Tensor::zeros([8])).unwrap()).collect();
        e.seal();
        e.drain();
        let r = e.take_response(ids[3]).expect("completed");
        assert_eq!(r.id, ids[3]);
        assert!(e.take_response(ids[3]).is_none(), "second take is empty");
        assert_eq!(e.take_responses().len(), 5, "wrapper drains the rest");
        e.shutdown();
    }

    #[test]
    fn admission_shed_ids_are_reported() {
        // Same setting as `overload_sheds_at_admission_and_within_budget`:
        // capacity 1600 of 2000 → the 400-id tail is shed at seal.
        let e = engine(2, RatePolicy::Elastic);
        for _ in 0..2000 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        e.seal();
        e.drain();
        let shed = e.take_shed_ids();
        assert_eq!(shed.len(), 400);
        assert!(shed.iter().all(|&id| id >= 1600), "the tail is shed");
        assert_eq!(e.take_responses().len(), 1600);
        assert!(e.take_shed_ids().is_empty(), "drained");
        e.shutdown();
    }

    #[test]
    fn per_request_deadline_tightens_the_batch_budget() {
        // Quadratic profile, t_full 10µs, engine budget 1ms. 64 requests at
        // the default plan at full width (64·1·10µs = 0.64ms ≤ 1ms); one
        // request with a 0.5ms total SLA (budget 0.25ms) forces the whole
        // batch down to the widest rate with 64·r²·10µs ≤ 0.25ms → r = 0.5.
        let e = engine(1, RatePolicy::Elastic);
        for _ in 0..63 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        e.submit_with_deadline(Tensor::zeros([8]), Some(0.5e-3)).unwrap();
        e.seal();
        e.drain();
        let rs = e.take_responses();
        assert_eq!(rs.len(), 64);
        assert!(rs.iter().all(|r| r.rate == 0.5), "rate {}", rs[0].rate);
        // The tightened budget does not leak into the next batch.
        for _ in 0..64 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        e.seal();
        e.drain();
        assert!(e.take_responses().iter().all(|r| r.rate == 1.0));
        e.shutdown();
    }

    #[test]
    fn wait_events_delivers_responses_and_times_out_when_idle() {
        let e = engine(1, RatePolicy::Elastic);
        let (rs, shed) = e.wait_events(std::time::Duration::from_millis(5));
        assert!(rs.is_empty() && shed.is_empty(), "timeout on idle engine");
        for _ in 0..4 {
            e.submit(Tensor::zeros([8])).unwrap();
        }
        e.seal();
        let (rs, shed) = e.wait_events(std::time::Duration::from_secs(5));
        assert_eq!(rs.len(), 4);
        assert!(shed.is_empty());
        e.shutdown();
    }

    #[test]
    fn refine_lifts_batches_to_full_width_given_slack() {
        let w = weights();
        let profile = LatencyProfile::quadratic(
            SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
            1e-5,
        );
        // A 2-second SLA dwarfs the microsecond-scale predicted deltas, so
        // the ladder always climbs to full width.
        let e = Engine::start(
            EngineConfig {
                latency: 2.0,
                headroom: 0.5,
                max_queue: 10_000,
                refine: true,
            },
            SlaController::new(profile, RatePolicy::Fixed(SliceRate::new(0.25))),
            vec![replica(&w)],
        );
        for i in 0..8 {
            e.submit(Tensor::full([8], i as f32 * 0.1 - 0.4)).unwrap();
        }
        e.seal();
        e.drain();
        let rs = e.take_responses();
        assert_eq!(rs.len(), 8);
        assert!(
            rs.iter().all(|r| r.rate == 1.0),
            "served at {}, not lifted to full",
            rs[0].rate
        );
        // Three ladder steps (0.25→0.5→0.75→1.0) for each of 8 requests.
        assert_eq!(e.counters().refined, 24);
        // The refined logits are bitwise what a direct prefix pass at full
        // width produces — refinement changes cost, never the answer.
        let mut reference = replica(&w);
        let inputs: Vec<Tensor> = (0..8)
            .map(|i| Tensor::full([8], i as f32 * 0.1 - 0.4))
            .collect();
        let mut want = Vec::new();
        refine_batched_forward(reference.as_mut(), &inputs, None, SliceRate::FULL, &mut want);
        for (r, w) in rs.iter().zip(&want) {
            assert_eq!(r.logits.data(), w.data(), "request {}", r.id);
        }
        e.shutdown();
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let e = engine(2, RatePolicy::Elastic);
        e.submit(Tensor::zeros([8])).unwrap();
        e.seal();
        e.drain();
        drop(e); // must not hang or leak the threads
    }
}
