//! Dynamic-workload serving (paper §4.1).
//!
//! The paper's deployment story: queries arrive as a stream with a dynamic
//! latency constraint `T`; the server builds a mini-batch every `T/2` and
//! spends the remaining `T/2` processing it, choosing the slice rate `r`
//! with `n·r²·t ≤ T/2` so every sample meets its deadline and no compute is
//! wasted. This crate simulates that loop and the baselines it replaces:
//!
//! - [`workload`] — arrival processes with diurnal cycles and flash-crowd
//!   spikes up to ≥16× the base rate (the Singles'-Day scenario of §1).
//! - [`batcher`] — the `T/2` mini-batch accumulation policy.
//! - [`controller`] — slice-rate selection policies, including the paper's
//!   elastic policy and the coarse degradation baselines (fixed model,
//!   model swap, candidate dropping).
//! - [`simulator`] — a discrete-time loop producing per-batch latency,
//!   width, shed-rate and accuracy-proxy traces.
//! - [`queue_sim`] — a backlog-aware variant (queries queue with deadlines
//!   instead of being shed) showing the fixed-width server's backlog
//!   snowballing through spikes while the elastic server drains it.
//!
//! Beyond the simulation, the crate now hosts the *real* serving path:
//!
//! - [`profile`] — measured per-rate latency profiles calibrated on the live
//!   network at startup (the measured replacement for the synthetic cost
//!   column).
//! - [`engine`] — a multi-threaded worker-pool engine running actual sliced
//!   forward passes, with SLA-driven batching, admission control and
//!   backpressure shedding, plus trace replay so the simulator's workloads
//!   can be scored against measured latencies.

pub mod batcher;
pub mod controller;
pub mod engine;
pub mod profile;
pub mod queue_sim;
pub mod simulator;
pub mod workload;

pub use controller::{AccuracyTable, Policy, RatePolicy, SlaController, SlaDecision};
pub use engine::{Engine, EngineConfig, EngineCounters, EngineResponse, ReplayReport, ShedReason};
pub use profile::LatencyProfile;
pub use simulator::{SimConfig, SimReport, Simulator};
pub use workload::{WorkloadConfig, WorkloadTrace};
