//! Measured per-rate latency profiles.
//!
//! The synthetic simulator scores policies against an assumed quadratic cost
//! law; the real engine cannot afford to assume. A [`LatencyProfile`] is the
//! measured replacement: at startup the engine times the *actual* sliced
//! network at every candidate rate and stores seconds-per-sample figures the
//! SLA controller then plans against (Eq. 3 with measured coefficients
//! instead of the analytic `r²`). The quadratic law survives as
//! [`LatencyProfile::quadratic`], used by tests that need a deterministic
//! profile and by the property suite that checks the controller against the
//! Eq. 3 bound.

use ms_core::inference::batched_sliced_forward;
use ms_core::slice_rate::{SliceRate, SliceRateList};
use ms_nn::layer::Layer;
use ms_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-rate service-time model: `predict(n, r) = overhead + n · per_sample[r]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyProfile {
    list: SliceRateList,
    /// Seconds per sample at each candidate rate (ascending with the list,
    /// made monotone non-decreasing at construction).
    per_sample: Vec<f64>,
    /// Fixed per-batch overhead in seconds (dispatch, stacking, splitting).
    overhead: f64,
}

impl LatencyProfile {
    /// Builds a profile from explicit measurements; `per_sample[i]`
    /// corresponds to `list.at(i)`. Values are clamped monotone
    /// non-decreasing in rate (a narrower subnet is never planned as slower
    /// than a wider one — measurement noise on tiny networks can otherwise
    /// invert neighbours and break the controller's monotonicity contract).
    pub fn new(list: SliceRateList, per_sample: Vec<f64>, overhead: f64) -> Self {
        assert_eq!(list.len(), per_sample.len());
        assert!(per_sample.iter().all(|&t| t > 0.0), "non-positive time");
        assert!(overhead >= 0.0);
        let mut mono = per_sample;
        for i in 1..mono.len() {
            mono[i] = mono[i].max(mono[i - 1]);
        }
        LatencyProfile {
            list,
            per_sample: mono,
            overhead,
        }
    }

    /// The analytic quadratic law `t(r) = t_full · r²` — the deterministic
    /// stand-in for tests and property checks.
    pub fn quadratic(list: SliceRateList, t_full: f64) -> Self {
        let per_sample = list
            .iter()
            .map(|r| t_full * r.get() as f64 * r.get() as f64)
            .collect();
        LatencyProfile::new(list, per_sample, 0.0)
    }

    /// Measures the profile on the live network: for every candidate rate,
    /// runs `reps` batched forward passes of `probe_batch` samples shaped
    /// `sample_dims` and keeps the fastest (least-interfered) run. The first
    /// pass per rate is a discarded warm-up that also populates the buffer
    /// pool and layer workspaces, so the kept timings reflect the
    /// zero-allocation steady state the engine runs in.
    pub fn calibrate(
        net: &mut dyn Layer,
        list: SliceRateList,
        sample_dims: &[usize],
        probe_batch: usize,
        reps: usize,
    ) -> Self {
        assert!(probe_batch > 0 && reps > 0);
        let inputs: Vec<Tensor> = (0..probe_batch)
            .map(|_| Tensor::zeros(sample_dims))
            .collect();
        let mut per_sample = Vec::with_capacity(list.len());
        for r in list.iter() {
            for out in batched_sliced_forward(net, &inputs, r) {
                out.recycle(); // warm-up pass
            }
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let outs = batched_sliced_forward(net, &inputs, r);
                best = best.min(t0.elapsed().as_secs_f64());
                for out in outs {
                    out.recycle();
                }
            }
            per_sample.push((best / probe_batch as f64).max(1e-9));
        }
        LatencyProfile::new(list, per_sample, 0.0)
    }

    /// The candidate rate list.
    pub fn list(&self) -> &SliceRateList {
        &self.list
    }

    /// Seconds per sample at a candidate rate.
    pub fn per_sample(&self, r: SliceRate) -> f64 {
        let idx = self.list.index_of(r).expect("rate in candidate list");
        self.per_sample[idx]
    }

    /// Predicted service time for a batch of `n` at rate `r`.
    pub fn predict(&self, n: usize, r: SliceRate) -> f64 {
        self.overhead + n as f64 * self.per_sample(r)
    }

    /// The widest candidate rate whose predicted service time for `n`
    /// samples fits `budget`, or `None` if even the base rate overruns.
    pub fn rate_within(&self, n: usize, budget: f64) -> Option<SliceRate> {
        let mut best = None;
        for r in self.list.iter() {
            if self.predict(n, r) <= budget {
                best = Some(r);
            }
        }
        best
    }

    /// The largest batch size serviceable at `r` within `budget`.
    pub fn max_batch(&self, r: SliceRate, budget: f64) -> usize {
        let room = budget - self.overhead;
        if room <= 0.0 {
            return 0;
        }
        // Relative epsilon: `0.010 / 0.001` computes as 9.999…, which must
        // still count as a capacity of 10.
        (room / self.per_sample(r) * (1.0 + 1e-12)).floor() as usize
    }

    /// Speed ratio full-rate vs base-rate — the elasticity the profile
    /// actually measured (≈ the paper's quadratic ratio for deep nets,
    /// flatter for nets dominated by unsliced input/output layers).
    pub fn elasticity(&self) -> f64 {
        self.per_sample.last().expect("nonempty") / self.per_sample[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> SliceRateList {
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0])
    }

    #[test]
    fn quadratic_profile_matches_eq3() {
        let p = LatencyProfile::quadratic(list(), 1e-3);
        assert!((p.predict(100, SliceRate::new(0.5)) - 0.025).abs() < 1e-12);
        assert!((p.elasticity() - 16.0).abs() < 1e-9);
        // 100 queries, 25ms budget → r² ≤ 0.25 → r = 0.5.
        assert_eq!(p.rate_within(100, 0.025).unwrap().get(), 0.5);
        // Loose budget → full width; impossible budget → None.
        assert!(p.rate_within(1, 1.0).unwrap().is_full());
        assert!(p.rate_within(10_000, 0.0001).is_none());
    }

    #[test]
    fn max_batch_inverts_predict() {
        let p = LatencyProfile::quadratic(list(), 1e-3);
        let r = SliceRate::new(0.25);
        let m = p.max_batch(r, 0.02);
        assert!(p.predict(m, r) <= 0.02 + 1e-12);
        assert!(p.predict(m + 1, r) > 0.02);
        assert_eq!(p.max_batch(r, 0.0), 0);
    }

    #[test]
    fn construction_enforces_monotone_per_sample() {
        // A noisy measurement where 0.5 came out "faster" than 0.25.
        let p = LatencyProfile::new(list(), vec![2e-3, 1e-3, 3e-3, 4e-3], 0.0);
        assert_eq!(p.per_sample(SliceRate::new(0.5)), 2e-3);
        assert_eq!(p.per_sample(SliceRate::new(0.75)), 3e-3);
    }

    #[test]
    fn overhead_counts_once_per_batch() {
        let p = LatencyProfile::new(list(), vec![1e-3; 4], 5e-3);
        assert!((p.predict(10, SliceRate::FULL) - 0.015).abs() < 1e-12);
        assert_eq!(p.max_batch(SliceRate::FULL, 0.015), 10);
    }

    #[test]
    fn calibration_produces_a_usable_profile() {
        use ms_nn::linear::{Linear, LinearConfig};
        use ms_nn::sequential::Sequential;
        use ms_tensor::SeededRng;
        let mut rng = SeededRng::new(7);
        let mut net = Sequential::new("net")
            .push(Linear::new(
                "fc1",
                LinearConfig {
                    in_dim: 32,
                    out_dim: 64,
                    in_groups: None,
                    out_groups: Some(4),
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            ))
            .push(Linear::new(
                "fc2",
                LinearConfig {
                    in_dim: 64,
                    out_dim: 8,
                    in_groups: Some(4),
                    out_groups: None,
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            ));
        let p = LatencyProfile::calibrate(&mut net, list(), &[32], 16, 3);
        // Times are positive, monotone, and the base subnet is no slower
        // than the full one (exact ratios are machine-dependent).
        assert!(p.per_sample(SliceRate::new(0.25)) > 0.0);
        assert!(p.elasticity() >= 1.0);
        assert!(p.predict(8, SliceRate::FULL) > p.predict(4, SliceRate::FULL));
    }
}
