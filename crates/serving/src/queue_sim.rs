//! Backlog-aware serving simulation.
//!
//! The batch simulator in [`crate::simulator`] makes an independent decision
//! per tick, which matches the paper's §4.1 batching design exactly (every
//! query is answered or shed within its own interval). Real deployments
//! often *queue* instead of shedding: a query waits until served or until
//! its deadline expires. This module simulates that regime — a FIFO backlog
//! with per-query deadlines — and shows the same headline from a different
//! angle: with elastic width the backlog drains during the same tick it
//! forms, while the fixed-width server's backlog snowballs through a spike
//! and keeps violating deadlines long after the spike ends (the
//! "system may crash when the workload exceeds system capacity" scenario
//! of §1).

use crate::controller::AccuracyTable;
use crate::workload::WorkloadTrace;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queueing policy: what width the server uses each tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Always full width.
    FixedFull,
    /// Elastic: the widest rate that drains the current backlog within one
    /// tick (or the base rate if even that cannot).
    Elastic,
}

/// Configuration of the queueing simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueSimConfig {
    /// Full-model per-query processing time (seconds).
    pub t_full: f64,
    /// Tick length = processing budget per tick (seconds).
    pub tick: f64,
    /// Deadline in ticks: a query older than this on service completion
    /// counts as a violation (it is still served, late).
    pub deadline_ticks: usize,
}

/// Aggregate outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueReport {
    /// Policy simulated.
    pub policy: QueuePolicy,
    /// Queries served within their deadline.
    pub on_time: usize,
    /// Queries served late.
    pub late: usize,
    /// Queries still queued when the trace ended.
    pub residual_backlog: usize,
    /// Maximum backlog length observed.
    pub peak_backlog: usize,
    /// Mean accuracy over served queries (width-dependent).
    pub mean_accuracy: f64,
    /// Mean wait in ticks over served queries.
    pub mean_wait_ticks: f64,
}

/// Runs the backlog simulation.
pub fn run_queue_sim(
    cfg: &QueueSimConfig,
    table: &AccuracyTable,
    policy: QueuePolicy,
    trace: &WorkloadTrace,
) -> QueueReport {
    assert!(cfg.t_full > 0.0 && cfg.tick > 0.0 && cfg.deadline_ticks > 0);
    let mut backlog: VecDeque<usize> = VecDeque::new(); // arrival tick per query
    let mut on_time = 0usize;
    let mut late = 0usize;
    let mut acc_sum = 0.0f64;
    let mut wait_sum = 0.0f64;
    let mut served = 0usize;
    let mut peak = 0usize;
    for (now, &arrivals) in trace.arrivals.iter().enumerate() {
        for _ in 0..arrivals {
            backlog.push_back(now);
        }
        peak = peak.max(backlog.len());
        // Pick the width for this tick.
        let n = backlog.len();
        if n == 0 {
            continue;
        }
        let rate = match policy {
            QueuePolicy::FixedFull => table.list().max(),
            QueuePolicy::Elastic => {
                // Largest rate draining the whole backlog this tick.
                let r2 = cfg.tick / (n as f64 * cfg.t_full);
                table.list().snap_down(r2.max(0.0).sqrt() as f32)
            }
        };
        let per = cfg.t_full * (rate.get() as f64) * (rate.get() as f64);
        let capacity = (cfg.tick / per).floor() as usize;
        let accuracy = table.at(rate);
        for _ in 0..capacity.min(n) {
            let arrived = backlog.pop_front().expect("n > 0");
            let wait = now - arrived;
            if wait <= cfg.deadline_ticks {
                on_time += 1;
            } else {
                late += 1;
            }
            acc_sum += accuracy;
            wait_sum += wait as f64;
            served += 1;
        }
    }
    QueueReport {
        policy,
        on_time,
        late,
        residual_backlog: backlog.len(),
        peak_backlog: peak,
        mean_accuracy: if served > 0 { acc_sum / served as f64 } else { 1.0 },
        mean_wait_ticks: if served > 0 {
            wait_sum / served as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use ms_core::slice_rate::SliceRateList;

    fn table() -> AccuracyTable {
        AccuracyTable::new(
            SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
            vec![0.90, 0.93, 0.94, 0.95],
        )
    }

    fn cfg() -> QueueSimConfig {
        QueueSimConfig {
            t_full: 1e-3,
            tick: 0.02, // 20 full-width queries per tick
            deadline_ticks: 2,
        }
    }

    fn bursty() -> WorkloadTrace {
        WorkloadTrace::generate(&WorkloadConfig {
            ticks: 1500,
            base_rate: 10.0,
            diurnal_amplitude: 2.0,
            diurnal_period: 300,
            spike_prob: 0.005,
            spike_multiplier: 10.0,
            spike_len: 20,
            seed: 31,
        })
    }

    #[test]
    fn conservation_and_bounds() {
        let trace = bursty();
        for policy in [QueuePolicy::FixedFull, QueuePolicy::Elastic] {
            let r = run_queue_sim(&cfg(), &table(), policy, &trace);
            assert_eq!(
                r.on_time + r.late + r.residual_backlog,
                trace.total(),
                "{policy:?}"
            );
            assert!(r.mean_accuracy > 0.8 && r.mean_accuracy <= 0.95 + 1e-9);
        }
    }

    #[test]
    fn elastic_drains_backlog_fixed_snowballs() {
        let trace = bursty();
        let fixed = run_queue_sim(&cfg(), &table(), QueuePolicy::FixedFull, &trace);
        let elastic = run_queue_sim(&cfg(), &table(), QueuePolicy::Elastic, &trace);
        // The elastic server waits less, misses fewer deadlines and its
        // backlog never grows as far.
        assert!(elastic.late < fixed.late, "{elastic:?} vs {fixed:?}");
        assert!(elastic.mean_wait_ticks < fixed.mean_wait_ticks);
        assert!(elastic.peak_backlog <= fixed.peak_backlog);
        // And the price is bounded: accuracy stays above the base model's.
        assert!(elastic.mean_accuracy > 0.90);
    }

    #[test]
    fn idle_trace_gives_full_width_and_no_waits() {
        let trace = WorkloadTrace::generate(&WorkloadConfig {
            ticks: 200,
            base_rate: 3.0,
            diurnal_amplitude: 1.0,
            spike_prob: 0.0,
            ..WorkloadConfig::default()
        });
        let r = run_queue_sim(&cfg(), &table(), QueuePolicy::Elastic, &trace);
        assert_eq!(r.late, 0);
        assert!((r.mean_accuracy - 0.95).abs() < 1e-9);
        assert_eq!(r.mean_wait_ticks, 0.0);
    }

    #[test]
    fn deadline_sensitivity() {
        // A tighter deadline converts waits into violations for the fixed
        // server but not for the elastic one.
        let trace = bursty();
        let tight = QueueSimConfig {
            deadline_ticks: 1,
            ..cfg()
        };
        let fixed = run_queue_sim(&tight, &table(), QueuePolicy::FixedFull, &trace);
        let elastic = run_queue_sim(&tight, &table(), QueuePolicy::Elastic, &trace);
        let fixed_rate = fixed.late as f64 / (fixed.on_time + fixed.late).max(1) as f64;
        let elastic_rate =
            elastic.late as f64 / (elastic.on_time + elastic.late).max(1) as f64;
        assert!(
            elastic_rate < fixed_rate,
            "elastic {elastic_rate} vs fixed {fixed_rate}"
        );
    }
}
