//! Discrete-time serving simulation.
//!
//! One tick = one `T/2` interval (see [`crate::batcher`]): the batch formed
//! during tick `t` is processed during tick `t+1` with a `T/2` processing
//! budget. A policy that keeps processing inside the budget gives every
//! query latency ≤ `T`; overruns are impossible by construction (policies
//! shed instead), so the comparison is about *effective accuracy* and
//! *shed rate* — exactly the §4.1 claim that fine-grained degradation
//! dominates coarse degradation.

use crate::batcher::batches_of;
use crate::controller::{AccuracyTable, Policy};
use crate::workload::WorkloadTrace;
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Full-model per-sample processing time (seconds).
    pub t_full: f64,
    /// Latency constraint `T` (seconds); the processing budget is `T/2`.
    pub latency: f64,
}

/// Aggregated outcome of one policy over one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy simulated.
    pub policy: Policy,
    /// Total queries that arrived.
    pub arrived: usize,
    /// Queries served within the latency bound.
    pub served: usize,
    /// Queries shed.
    pub shed: usize,
    /// Mean effective accuracy over batches, weighted by batch size
    /// (shed queries count as wrong).
    pub mean_accuracy: f64,
    /// Mean processing-budget utilisation over non-empty batches.
    pub utilization: f64,
    /// Width usage histogram `(rate, batches)`, elastic policies only.
    pub rate_histogram: Vec<(f32, usize)>,
}

/// Runs policies over workload traces.
pub struct Simulator {
    cfg: SimConfig,
    table: AccuracyTable,
}

impl Simulator {
    /// Creates the simulator.
    pub fn new(cfg: SimConfig, table: AccuracyTable) -> Self {
        assert!(cfg.t_full > 0.0 && cfg.latency > 0.0);
        Simulator { cfg, table }
    }

    /// The accuracy table in use.
    pub fn table(&self) -> &AccuracyTable {
        &self.table
    }

    /// Simulates one policy over a trace.
    pub fn run(&self, policy: Policy, trace: &WorkloadTrace) -> SimReport {
        let budget = self.cfg.latency / 2.0;
        let mut served = 0usize;
        let mut shed = 0usize;
        let mut acc_weighted = 0.0f64;
        let mut weight = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut util_n = 0usize;
        let mut hist: Vec<(f32, usize)> = Vec::new();
        for batch in batches_of(&trace.arrivals) {
            let d = policy.decide(batch.size, self.cfg.t_full, budget, &self.table);
            served += d.served;
            shed += d.shed;
            if batch.size > 0 {
                acc_weighted += d.effective_accuracy * batch.size as f64;
                weight += batch.size as f64;
                util_sum += d.time_spent / budget;
                util_n += 1;
                if let Some(r) = d.rate {
                    match hist.iter_mut().find(|(hr, _)| (*hr - r).abs() < 1e-6) {
                        Some((_, c)) => *c += 1,
                        None => hist.push((r, 1)),
                    }
                }
            }
        }
        hist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        SimReport {
            policy,
            arrived: trace.total(),
            served,
            shed,
            mean_accuracy: if weight > 0.0 { acc_weighted / weight } else { 1.0 },
            utilization: if util_n > 0 {
                util_sum / util_n as f64
            } else {
                0.0
            },
            rate_histogram: hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadConfig;
    use ms_core::slice_rate::SliceRateList;

    fn sim() -> Simulator {
        Simulator::new(
            SimConfig {
                t_full: 0.001,
                latency: 0.05,
            },
            AccuracyTable::new(
                SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
                vec![0.90, 0.93, 0.94, 0.95],
            ),
        )
    }

    fn spiky_trace() -> WorkloadTrace {
        WorkloadTrace::generate(&WorkloadConfig {
            ticks: 800,
            base_rate: 10.0,
            diurnal_amplitude: 2.0,
            diurnal_period: 200,
            spike_prob: 0.01,
            spike_multiplier: 12.0,
            spike_len: 20,
            seed: 5,
        })
    }

    #[test]
    fn conservation_of_queries() {
        let s = sim();
        let trace = spiky_trace();
        for policy in [Policy::FixedFull, Policy::FixedBase, Policy::ModelSlicing] {
            let r = s.run(policy, &trace);
            assert_eq!(r.served + r.shed, r.arrived, "{policy:?}");
        }
    }

    #[test]
    fn slicing_dominates_coarse_policies_on_spiky_load() {
        let s = sim();
        let trace = spiky_trace();
        let slicing = s.run(Policy::ModelSlicing, &trace);
        let full = s.run(Policy::FixedFull, &trace);
        let base = s.run(Policy::FixedBase, &trace);
        let drop = s.run(Policy::DropCandidates, &trace);
        // The §4.1 headline: elastic width sheds (almost) nothing and keeps
        // accuracy above every coarse policy.
        assert!(slicing.shed <= full.shed);
        assert!(slicing.mean_accuracy > full.mean_accuracy);
        assert!(slicing.mean_accuracy > drop.mean_accuracy);
        // The base-width model also survives the load but pays accuracy for
        // it at all times; slicing only pays during the peaks.
        assert!(slicing.mean_accuracy > base.mean_accuracy);
    }

    #[test]
    fn slicing_uses_full_width_when_idle() {
        let s = sim();
        let trace = WorkloadTrace::generate(&WorkloadConfig {
            ticks: 100,
            base_rate: 2.0,
            diurnal_amplitude: 1.0,
            spike_prob: 0.0,
            ..WorkloadConfig::default()
        });
        let r = s.run(Policy::ModelSlicing, &trace);
        // Histogram collapses to rate 1.0.
        assert_eq!(r.rate_histogram.len(), 1);
        assert_eq!(r.rate_histogram[0].0, 1.0);
        assert!((r.mean_accuracy - 0.95).abs() < 1e-9);
    }

    #[test]
    fn utilization_stays_within_budget() {
        let s = sim();
        let trace = spiky_trace();
        let r = s.run(Policy::ModelSlicing, &trace);
        assert!(r.utilization <= 1.0 + 1e-9, "util {}", r.utilization);
        assert!(r.utilization > 0.05);
    }
}
