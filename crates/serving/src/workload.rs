//! Arrival-process generation.
//!
//! Query arrivals are Poisson with a time-varying rate composed of a base
//! level, a diurnal sinusoid and flash-crowd spikes — the "peak workload 10×
//! higher than average, with unpredictable extreme cases" setting that
//! motivates the paper (§1). The trace is a per-tick arrival count.

use ms_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Workload shape parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of ticks to generate (one tick = one batching interval, T/2).
    pub ticks: usize,
    /// Mean arrivals per tick at the base level.
    pub base_rate: f64,
    /// Peak-to-base multiplier of the diurnal sinusoid (≥ 1).
    pub diurnal_amplitude: f64,
    /// Ticks per diurnal period.
    pub diurnal_period: usize,
    /// Probability that a flash-crowd spike starts at any tick.
    pub spike_prob: f64,
    /// Multiplier applied during a spike (the "10×–16×" of §1).
    pub spike_multiplier: f64,
    /// Spike duration in ticks.
    pub spike_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            ticks: 2000,
            base_rate: 8.0,
            diurnal_amplitude: 3.0,
            diurnal_period: 500,
            spike_prob: 0.004,
            spike_multiplier: 16.0,
            spike_len: 40,
            seed: 23,
        }
    }
}

/// A generated arrival trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Arrivals per tick.
    pub arrivals: Vec<usize>,
    /// The latent rate per tick (for plotting / diagnostics).
    pub rates: Vec<f64>,
}

impl WorkloadTrace {
    /// Generates the trace.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(cfg.ticks > 0 && cfg.base_rate > 0.0 && cfg.diurnal_amplitude >= 1.0);
        let mut rng = SeededRng::new(cfg.seed);
        let mut arrivals = Vec::with_capacity(cfg.ticks);
        let mut rates = Vec::with_capacity(cfg.ticks);
        let mut spike_left = 0usize;
        for t in 0..cfg.ticks {
            if spike_left == 0 && rng.chance(cfg.spike_prob) {
                spike_left = cfg.spike_len;
            }
            let phase = 2.0 * std::f64::consts::PI * (t % cfg.diurnal_period) as f64
                / cfg.diurnal_period as f64;
            // Sinusoid in [1, amplitude].
            let diurnal =
                1.0 + (cfg.diurnal_amplitude - 1.0) * 0.5 * (1.0 - phase.cos());
            let spike = if spike_left > 0 {
                spike_left -= 1;
                cfg.spike_multiplier
            } else {
                1.0
            };
            let rate = cfg.base_rate * diurnal * spike;
            rates.push(rate);
            arrivals.push(poisson(rate, &mut rng));
        }
        WorkloadTrace { arrivals, rates }
    }

    /// Generates a trace from an explicit per-tick latent rate function —
    /// the building block of the named shapes below. Arrivals stay
    /// Poisson; only the rate schedule is caller-defined.
    pub fn from_rate_fn(ticks: usize, seed: u64, rate_at: impl Fn(usize) -> f64) -> Self {
        assert!(ticks > 0);
        let mut rng = SeededRng::new(seed);
        let mut arrivals = Vec::with_capacity(ticks);
        let mut rates = Vec::with_capacity(ticks);
        for t in 0..ticks {
            let rate = rate_at(t);
            assert!(rate >= 0.0, "negative rate at tick {t}");
            rates.push(rate);
            arrivals.push(poisson(rate, &mut rng));
        }
        WorkloadTrace { arrivals, rates }
    }

    /// Diurnal shape: a pure sinusoid between `base_rate` and
    /// `base_rate × amplitude` with period `period` ticks — the slow
    /// day/night swing an autoscaler should follow without flapping.
    pub fn diurnal(ticks: usize, base_rate: f64, amplitude: f64, period: usize, seed: u64) -> Self {
        assert!(base_rate > 0.0 && amplitude >= 1.0 && period > 0);
        Self::from_rate_fn(ticks, seed, |t| {
            let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
            base_rate * (1.0 + (amplitude - 1.0) * 0.5 * (1.0 - phase.cos()))
        })
    }

    /// Spike shape: flat `base_rate` except one deterministic window
    /// `[spike_start, spike_start + spike_len)` at `base_rate ×
    /// multiplier` — the single-event overload the cluster e2e and bench
    /// drive, placed deterministically so fleet comparisons see the
    /// identical schedule.
    pub fn spike(
        ticks: usize,
        base_rate: f64,
        multiplier: f64,
        spike_start: usize,
        spike_len: usize,
        seed: u64,
    ) -> Self {
        assert!(base_rate > 0.0 && multiplier >= 1.0);
        let window = spike_start..spike_start.saturating_add(spike_len);
        Self::from_rate_fn(ticks, seed, |t| {
            if window.contains(&t) {
                base_rate * multiplier
            } else {
                base_rate
            }
        })
    }

    /// Flash-crowd shape: `crowds` evenly spaced spikes of `crowd_len`
    /// ticks at `base_rate × multiplier` (the paper's "10×–16× with
    /// unpredictable extreme cases", §1, made repeatable).
    pub fn flash_crowd(
        ticks: usize,
        base_rate: f64,
        multiplier: f64,
        crowds: usize,
        crowd_len: usize,
        seed: u64,
    ) -> Self {
        assert!(base_rate > 0.0 && multiplier >= 1.0 && crowds > 0);
        let stride = (ticks / crowds).max(1);
        Self::from_rate_fn(ticks, seed, |t| {
            // Each crowd occupies the middle of its stride so the trace
            // starts and ends calm.
            let offset = t % stride;
            let start = stride.saturating_sub(crowd_len) / 2;
            if offset >= start && offset < start + crowd_len {
                base_rate * multiplier
            } else {
                base_rate
            }
        })
    }

    /// Peak-to-mean ratio of the latent rate — the volatility figure.
    pub fn volatility(&self) -> f64 {
        let mean = self.rates.iter().sum::<f64>() / self.rates.len() as f64;
        let peak = self.rates.iter().cloned().fold(0.0f64, f64::max);
        peak / mean
    }

    /// Total arrivals.
    pub fn total(&self) -> usize {
        self.arrivals.iter().sum()
    }
}

/// Knuth Poisson sampler for small rates; normal approximation above 64.
fn poisson(rate: f64, rng: &mut SeededRng) -> usize {
    if rate > 64.0 {
        let v = rng.normal(rate as f32, rate.sqrt() as f32);
        return v.round().max(0.0) as usize;
    }
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.uniform(0.0, 1.0) as f64;
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerical guard; unreachable for sane rates
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sized() {
        let cfg = WorkloadConfig::default();
        let a = WorkloadTrace::generate(&cfg);
        let b = WorkloadTrace::generate(&cfg);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.arrivals.len(), cfg.ticks);
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let mut rng = SeededRng::new(1);
        for &rate in &[0.5f64, 4.0, 20.0, 100.0] {
            let n = 3000;
            let mean: f64 =
                (0..n).map(|_| poisson(rate, &mut rng) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - rate).abs() < rate.max(1.0) * 0.12,
                "rate {rate}: mean {mean}"
            );
        }
    }

    #[test]
    fn volatility_reaches_configured_peaks() {
        let cfg = WorkloadConfig {
            ticks: 5000,
            spike_prob: 0.002, // ~8 % of ticks inside a spike
            ..WorkloadConfig::default()
        };
        let t = WorkloadTrace::generate(&cfg);
        // Peak includes diurnal max × spike multiplier; mean is much lower.
        assert!(t.volatility() > 8.0, "volatility {}", t.volatility());
    }

    #[test]
    fn named_shapes_are_deterministic_and_shaped() {
        let d = WorkloadTrace::diurnal(1000, 4.0, 3.0, 250, 7);
        assert_eq!(d.arrivals, WorkloadTrace::diurnal(1000, 4.0, 3.0, 250, 7).arrivals);
        let dmax = d.rates.iter().cloned().fold(0.0f64, f64::max);
        let dmin = d.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((dmax - 12.0).abs() < 1e-6 && (dmin - 4.0).abs() < 1e-6);

        let s = WorkloadTrace::spike(100, 2.0, 10.0, 30, 20, 7);
        for (t, &r) in s.rates.iter().enumerate() {
            let expect = if (30..50).contains(&t) { 20.0 } else { 2.0 };
            assert_eq!(r, expect, "tick {t}");
        }

        let f = WorkloadTrace::flash_crowd(300, 2.0, 8.0, 3, 10, 7);
        let hot = f.rates.iter().filter(|&&r| r > 2.0).count();
        assert_eq!(hot, 30, "3 crowds x 10 ticks");
        // Starts and ends calm.
        assert_eq!(f.rates[0], 2.0);
        assert_eq!(*f.rates.last().unwrap(), 2.0);
    }

    #[test]
    fn no_spikes_means_bounded_range() {
        let cfg = WorkloadConfig {
            spike_prob: 0.0,
            diurnal_amplitude: 2.0,
            ..WorkloadConfig::default()
        };
        let t = WorkloadTrace::generate(&cfg);
        let max = t.rates.iter().cloned().fold(0.0f64, f64::max);
        let min = t.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= cfg.base_rate * 2.0 + 1e-9);
        assert!(min >= cfg.base_rate - 1e-9);
    }
}
