//! Arrival-process generation.
//!
//! Query arrivals are Poisson with a time-varying rate composed of a base
//! level, a diurnal sinusoid and flash-crowd spikes — the "peak workload 10×
//! higher than average, with unpredictable extreme cases" setting that
//! motivates the paper (§1). The trace is a per-tick arrival count.

use ms_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Workload shape parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of ticks to generate (one tick = one batching interval, T/2).
    pub ticks: usize,
    /// Mean arrivals per tick at the base level.
    pub base_rate: f64,
    /// Peak-to-base multiplier of the diurnal sinusoid (≥ 1).
    pub diurnal_amplitude: f64,
    /// Ticks per diurnal period.
    pub diurnal_period: usize,
    /// Probability that a flash-crowd spike starts at any tick.
    pub spike_prob: f64,
    /// Multiplier applied during a spike (the "10×–16×" of §1).
    pub spike_multiplier: f64,
    /// Spike duration in ticks.
    pub spike_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            ticks: 2000,
            base_rate: 8.0,
            diurnal_amplitude: 3.0,
            diurnal_period: 500,
            spike_prob: 0.004,
            spike_multiplier: 16.0,
            spike_len: 40,
            seed: 23,
        }
    }
}

/// A generated arrival trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Arrivals per tick.
    pub arrivals: Vec<usize>,
    /// The latent rate per tick (for plotting / diagnostics).
    pub rates: Vec<f64>,
}

impl WorkloadTrace {
    /// Generates the trace.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(cfg.ticks > 0 && cfg.base_rate > 0.0 && cfg.diurnal_amplitude >= 1.0);
        let mut rng = SeededRng::new(cfg.seed);
        let mut arrivals = Vec::with_capacity(cfg.ticks);
        let mut rates = Vec::with_capacity(cfg.ticks);
        let mut spike_left = 0usize;
        for t in 0..cfg.ticks {
            if spike_left == 0 && rng.chance(cfg.spike_prob) {
                spike_left = cfg.spike_len;
            }
            let phase = 2.0 * std::f64::consts::PI * (t % cfg.diurnal_period) as f64
                / cfg.diurnal_period as f64;
            // Sinusoid in [1, amplitude].
            let diurnal =
                1.0 + (cfg.diurnal_amplitude - 1.0) * 0.5 * (1.0 - phase.cos());
            let spike = if spike_left > 0 {
                spike_left -= 1;
                cfg.spike_multiplier
            } else {
                1.0
            };
            let rate = cfg.base_rate * diurnal * spike;
            rates.push(rate);
            arrivals.push(poisson(rate, &mut rng));
        }
        WorkloadTrace { arrivals, rates }
    }

    /// Peak-to-mean ratio of the latent rate — the volatility figure.
    pub fn volatility(&self) -> f64 {
        let mean = self.rates.iter().sum::<f64>() / self.rates.len() as f64;
        let peak = self.rates.iter().cloned().fold(0.0f64, f64::max);
        peak / mean
    }

    /// Total arrivals.
    pub fn total(&self) -> usize {
        self.arrivals.iter().sum()
    }
}

/// Knuth Poisson sampler for small rates; normal approximation above 64.
fn poisson(rate: f64, rng: &mut SeededRng) -> usize {
    if rate > 64.0 {
        let v = rng.normal(rate as f32, rate.sqrt() as f32);
        return v.round().max(0.0) as usize;
    }
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.uniform(0.0, 1.0) as f64;
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerical guard; unreachable for sane rates
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sized() {
        let cfg = WorkloadConfig::default();
        let a = WorkloadTrace::generate(&cfg);
        let b = WorkloadTrace::generate(&cfg);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.arrivals.len(), cfg.ticks);
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let mut rng = SeededRng::new(1);
        for &rate in &[0.5f64, 4.0, 20.0, 100.0] {
            let n = 3000;
            let mean: f64 =
                (0..n).map(|_| poisson(rate, &mut rng) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - rate).abs() < rate.max(1.0) * 0.12,
                "rate {rate}: mean {mean}"
            );
        }
    }

    #[test]
    fn volatility_reaches_configured_peaks() {
        let cfg = WorkloadConfig {
            ticks: 5000,
            spike_prob: 0.002, // ~8 % of ticks inside a spike
            ..WorkloadConfig::default()
        };
        let t = WorkloadTrace::generate(&cfg);
        // Peak includes diurnal max × spike multiplier; mean is much lower.
        assert!(t.volatility() > 8.0, "volatility {}", t.volatility());
    }

    #[test]
    fn no_spikes_means_bounded_range() {
        let cfg = WorkloadConfig {
            spike_prob: 0.0,
            diurnal_amplitude: 2.0,
            ..WorkloadConfig::default()
        };
        let t = WorkloadTrace::generate(&cfg);
        let max = t.rates.iter().cloned().fold(0.0f64, f64::max);
        let min = t.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max <= cfg.base_rate * 2.0 + 1e-9);
        assert!(min >= cfg.base_rate - 1e-9);
    }
}
