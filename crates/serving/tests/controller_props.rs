//! Property tests for slice-rate selection: the synthetic [`Policy`] and the
//! measured-profile [`SlaController`] must both respect the Eq. 3 bound —
//! the chosen width's cost never exceeds the budget — and degrade
//! monotonically: more load never buys a *wider* network, and when even the
//! base rate cannot carry the batch the controller sheds instead of serving
//! late.

use ms_core::slice_rate::SliceRateList;
use ms_serving::controller::{AccuracyTable, Policy, RatePolicy, SlaController};
use ms_serving::profile::LatencyProfile;
use proptest::prelude::*;

fn rate_list() -> SliceRateList {
    SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0])
}

/// Quadratic-law profile for a given model speed and per-batch overhead.
fn profile_of(t_full: f64, overhead: f64) -> LatencyProfile {
    let list = rate_list();
    let per_sample = list
        .iter()
        .map(|r| t_full * r.get() as f64 * r.get() as f64)
        .collect();
    LatencyProfile::new(list, per_sample, overhead)
}

/// Slack for the controller's floating-point capacity arithmetic.
fn eps(budget: f64) -> f64 {
    budget * 1e-9 + 1e-12
}

proptest! {
    /// Elastic admission never plans past the budget: whatever it admits is
    /// predicted to finish in time (the Eq. 3 bound with measured
    /// coefficients), and admission accounts for every query.
    #[test]
    fn elastic_decisions_respect_the_budget(
        t_full in 1e-6f64..1e-2,
        overhead in 0f64..1e-3,
        n in 0usize..20_000,
        budget in 1e-6f64..1.0,
    ) {
        let c = SlaController::elastic(profile_of(t_full, overhead));
        let d = c.decide(n, budget);
        prop_assert_eq!(d.admit + d.shed, n);
        prop_assert!(c.profile().list().index_of(d.rate).is_some());
        if d.admit > 0 {
            let predicted = c.profile().predict(d.admit, d.rate);
            prop_assert!(
                predicted <= budget + eps(budget),
                "admitted {} at rate {} predicted {} > budget {}",
                d.admit, d.rate, predicted, budget
            );
        }
    }

    /// More load never widens the network: the chosen rate is non-increasing
    /// in batch size at a fixed budget.
    #[test]
    fn elastic_rate_is_monotone_in_load(
        t_full in 1e-6f64..1e-2,
        overhead in 0f64..1e-3,
        n in 1usize..10_000,
        extra in 1usize..10_000,
        budget in 1e-6f64..1.0,
    ) {
        let c = SlaController::elastic(profile_of(t_full, overhead));
        let light = c.decide(n, budget);
        let heavy = c.decide(n + extra, budget);
        prop_assert!(
            heavy.rate.get() <= light.rate.get(),
            "load {} chose {}, heavier load {} chose {}",
            n, light.rate, n + extra, heavy.rate
        );
    }

    /// Shedding is the last resort and is exact: the controller sheds only
    /// at the base rate, only when the full batch cannot fit, and never
    /// sheds a query that would have fit.
    #[test]
    fn elastic_sheds_only_when_the_base_rate_saturates(
        t_full in 1e-6f64..1e-2,
        overhead in 0f64..1e-3,
        n in 1usize..20_000,
        budget in 1e-6f64..1.0,
    ) {
        let c = SlaController::elastic(profile_of(t_full, overhead));
        let d = c.decide(n, budget);
        if d.shed > 0 {
            let r_min = c.profile().list().min();
            prop_assert_eq!(d.rate, r_min);
            // The whole batch really did not fit at the base rate…
            prop_assert!(c.profile().predict(n, r_min) > budget);
            // …and one more admitted query would overrun.
            let one_more = c.profile().predict(d.admit + 1, d.rate);
            prop_assert!(
                one_more > budget - eps(budget),
                "shed {} but admit+1 predicted {} fits budget {}",
                d.shed, one_more, budget
            );
        }
    }

    /// The fixed-width comparators: `Fixed` admits everything (it models the
    /// inelastic server that goes late), `FixedShedding` stays within budget
    /// like elastic but at its pinned width.
    #[test]
    fn fixed_policies_hold_their_contracts(
        t_full in 1e-6f64..1e-2,
        overhead in 0f64..1e-3,
        n in 0usize..20_000,
        budget in 1e-6f64..1.0,
        rate_idx in 0usize..4,
    ) {
        let profile = profile_of(t_full, overhead);
        let rate = rate_list().at(rate_idx);
        let fixed = SlaController::new(profile.clone(), RatePolicy::Fixed(rate)).decide(n, budget);
        prop_assert_eq!((fixed.admit, fixed.shed), (n, 0));
        prop_assert_eq!(fixed.rate, rate);

        let shedding =
            SlaController::new(profile.clone(), RatePolicy::FixedShedding(rate)).decide(n, budget);
        prop_assert_eq!(shedding.admit + shedding.shed, n);
        prop_assert_eq!(shedding.rate, rate);
        if shedding.admit > 0 {
            prop_assert!(profile.predict(shedding.admit, rate) <= budget + eps(budget));
        }
    }

    /// The synthetic simulator policy obeys the same Eq. 3 bound: time spent
    /// never exceeds the budget and accounting is exact. (This is the
    /// invariant `tests/serving_sla.rs` relies on when comparing policies.)
    #[test]
    fn synthetic_slicing_policy_never_overruns(
        n in 0usize..20_000,
        t_full in 1e-6f64..1e-2,
        budget in 1e-6f64..1.0,
    ) {
        let table = AccuracyTable::new(rate_list(), vec![0.90, 0.93, 0.94, 0.95]);
        let d = Policy::ModelSlicing.decide(n, t_full, budget, &table);
        prop_assert_eq!(d.served + d.shed, n);
        prop_assert!(d.time_spent <= budget + eps(budget));
        if n > 0 {
            let r = d.rate.expect("slicing always picks a rate") as f64;
            // Widest-fitting rule: either everything fit, or the base rate
            // was already in use.
            if d.shed > 0 {
                prop_assert!((r - 0.25).abs() < 1e-6);
            }
        }
    }
}
