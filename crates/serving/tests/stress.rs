//! Soak test: hammer the engine from many producer threads while a sealer
//! thread closes batches, and verify the engine neither deadlocks nor loses
//! a request — every submission is either served or counted as shed.
//!
//! Ignored by default (it runs for several wall-clock seconds); run with
//! `cargo test -p ms-serving --test stress -- --ignored`.

use ms_core::slice_rate::SliceRateList;
use ms_nn::layer::Layer;
use ms_nn::linear::{Linear, LinearConfig};
use ms_nn::sequential::Sequential;
use ms_nn::shared::SharedWeights;
use ms_serving::engine::{Engine, EngineConfig};
use ms_serving::profile::LatencyProfile;
use ms_serving::SlaController;
use ms_tensor::{SeededRng, Tensor};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 16;
const PRODUCERS: usize = 8;
const WORKERS: usize = 4;
const SOAK: Duration = Duration::from_secs(5);

fn replica_proto() -> Box<dyn Layer + Send> {
    let mut rng = SeededRng::new(1);
    Box::new(
        Sequential::new("soak")
            .push(Linear::new(
                "fc1",
                LinearConfig {
                    in_dim: DIM,
                    out_dim: 64,
                    in_groups: None,
                    out_groups: Some(4),
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            ))
            .push(Linear::new(
                "fc2",
                LinearConfig {
                    in_dim: 64,
                    out_dim: 8,
                    in_groups: Some(4),
                    out_groups: None,
                    bias: true,
                    input_rescale: true,
                },
                &mut rng,
            )),
    )
}

fn replica(weights: &SharedWeights) -> Box<dyn Layer + Send> {
    let mut net = replica_proto();
    weights.hydrate(net.as_mut());
    net
}

#[test]
#[ignore = "multi-second soak; run explicitly with -- --ignored"]
fn eight_producers_five_seconds_no_deadlock_no_lost_requests() {
    let weights = {
        let mut proto = replica_proto();
        SharedWeights::capture(proto.as_mut())
    };
    let profile = LatencyProfile::quadratic(
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        2e-6,
    );
    let engine = Arc::new(Engine::start(
        EngineConfig {
            latency: 4e-3,
            headroom: 0.8,
            max_queue: 2048,
            refine: false,
        },
        SlaController::elastic(profile),
        (0..WORKERS).map(|_| replica(&weights)).collect(),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let offered = Arc::new(AtomicU64::new(0));

    // Producers: submit as fast as the engine accepts, count every offer.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let offered = Arc::clone(&offered);
            std::thread::spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = (p as f32 + local as f32 * 0.001).sin();
                    let _ = engine.submit(Tensor::full([DIM], v));
                    local += 1;
                    if local % 256 == 0 {
                        std::thread::yield_now();
                    }
                }
                offered.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();

    // Sealer: close a batch every ~1 ms and keep the response log drained so
    // memory stays bounded over the soak.
    let responded = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut responded = 0u64;
            while !stop.load(Ordering::Relaxed) {
                engine.seal();
                for r in engine.take_responses() {
                    r.logits.recycle();
                    responded += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            responded
        })
    };

    let t0 = Instant::now();
    std::thread::sleep(SOAK);
    stop.store(true, Ordering::Relaxed);
    for p in producers {
        p.join().expect("producer panicked");
    }
    let mut responded = responded.join().expect("sealer panicked");

    // Flush what is still queued, then reconcile the books.
    engine.seal();
    engine.drain();
    responded += engine.take_responses().len() as u64;
    let c = engine.counters();
    assert_eq!(
        c.submitted,
        offered.load(Ordering::Relaxed),
        "engine missed submissions"
    );
    assert_eq!(
        c.served + c.shed,
        c.submitted,
        "requests lost: served {} + shed {} != submitted {}",
        c.served,
        c.shed,
        c.submitted
    );
    assert_eq!(c.served, responded, "served counter vs responses taken");
    assert!(c.batches > 0 && c.served > 0, "engine did no work");
    assert!(
        t0.elapsed() < SOAK + Duration::from_secs(30),
        "drain took pathologically long — likely a livelock"
    );
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("engine still referenced"))
        .shutdown();
}
