//! Exposition: Prometheus text format, JSON snapshots, periodic flushing.
//!
//! Rendering walks the registry under its registration mutex (handles keep
//! recording concurrently; values are relaxed-atomic snapshots). Histogram
//! series emit only non-empty buckets — the log-linear layout has 802
//! buckets per series and a dump that carried all of them would be mostly
//! zeros.

use crate::registry::Registry;
use crate::spans;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Registry {
    /// Renders every registered series in Prometheus text format 0.0.4.
    /// Span aggregates (when compiled in) are appended as
    /// `span_calls_total` / `span_total_seconds` / `span_self_seconds`
    /// series labeled by site name.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        let mut last_name = String::new();
        for c in &inner.counters {
            let desc = &c.0.desc;
            if desc.name != last_name {
                if !desc.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", desc.name, prom_escape(&desc.help));
                }
                let _ = writeln!(out, "# TYPE {} counter", desc.name);
                last_name = desc.name.clone();
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                desc.name,
                label_block(&desc.labels, None),
                c.get()
            );
        }
        last_name.clear();
        for g in &inner.gauges {
            let desc = &g.0.desc;
            if desc.name != last_name {
                if !desc.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", desc.name, prom_escape(&desc.help));
                }
                let _ = writeln!(out, "# TYPE {} gauge", desc.name);
                last_name = desc.name.clone();
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                desc.name,
                label_block(&desc.labels, None),
                fmt_f64(g.get())
            );
        }
        last_name.clear();
        for h in &inner.histograms {
            let desc = &h.0.desc;
            if desc.name != last_name {
                if !desc.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", desc.name, prom_escape(&desc.help));
                }
                let _ = writeln!(out, "# TYPE {} histogram", desc.name);
                last_name = desc.name.clone();
            }
            let count = h.count();
            for (le, cum) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    desc.name,
                    label_block(&desc.labels, Some(("le", &format!("{le:.9e}")))),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                desc.name,
                label_block(&desc.labels, Some(("le", "+Inf"))),
                count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                desc.name,
                label_block(&desc.labels, None),
                fmt_f64(h.sum())
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                desc.name,
                label_block(&desc.labels, None),
                count
            );
            // OpenMetrics-style exemplar, rendered as a comment so strict
            // 0.0.4 parsers skip it while humans and our own tools can
            // still jump from a histogram to the flight-recorder chain.
            if let Some((v, trace_id)) = h.exemplar() {
                let _ = writeln!(
                    out,
                    "# EXEMPLAR {}{} value={} trace_id={}",
                    desc.name,
                    label_block(&desc.labels, None),
                    fmt_f64(v),
                    trace_id
                );
            }
        }
        let span_snap = spans::snapshot();
        if !span_snap.is_empty() {
            let _ = writeln!(out, "# TYPE span_calls_total counter");
            for s in &span_snap {
                let _ = writeln!(out, "span_calls_total{{span=\"{}\"}} {}", s.name, s.calls);
            }
            let _ = writeln!(out, "# TYPE span_total_seconds counter");
            for s in &span_snap {
                let _ = writeln!(
                    out,
                    "span_total_seconds{{span=\"{}\"}} {}",
                    s.name,
                    s.total_ns as f64 * 1e-9
                );
            }
            let _ = writeln!(out, "# TYPE span_self_seconds counter");
            for s in &span_snap {
                let _ = writeln!(
                    out,
                    "span_self_seconds{{span=\"{}\"}} {}",
                    s.name,
                    s.self_ns as f64 * 1e-9
                );
            }
        }
        out
    }

    /// Renders a structured JSON snapshot: raw counter/gauge values,
    /// histogram count/sum plus p50/p90/p99 (bucket-resolution), and span
    /// aggregates.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::from("{\n  \"counters\": [\n");
        for (i, c) in inner.counters.iter().enumerate() {
            let desc = &c.0.desc;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}{}\n",
                json_escape(&desc.name),
                json_labels(&desc.labels),
                c.get(),
                if i + 1 == inner.counters.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"gauges\": [\n");
        for (i, g) in inner.gauges.iter().enumerate() {
            let desc = &g.0.desc;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}{}\n",
                json_escape(&desc.name),
                json_labels(&desc.labels),
                json_num(g.get()),
                if i + 1 == inner.gauges.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        for (i, h) in inner.histograms.iter().enumerate() {
            let desc = &h.0.desc;
            let exemplar = match h.exemplar() {
                Some((v, id)) => {
                    format!("{{\"value\": {}, \"trace_id\": {}}}", json_num(v), id)
                }
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"exemplar\": {}}}{}\n",
                json_escape(&desc.name),
                json_labels(&desc.labels),
                h.count(),
                json_num(h.sum()),
                json_num(h.percentile(0.50)),
                json_num(h.percentile(0.90)),
                json_num(h.percentile(0.99)),
                exemplar,
                if i + 1 == inner.histograms.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"spans\": [\n");
        let span_snap = spans::snapshot();
        for (i, s) in span_snap.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"calls\": {}, \"total_s\": {}, \"self_s\": {}}}{}\n",
                json_escape(s.name),
                s.calls,
                json_num(s.total_ns as f64 * 1e-9),
                json_num(s.self_ns as f64 * 1e-9),
                if i + 1 == span_snap.len() { "" } else { "," }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Atomic file replacement: write the full contents to a dot-prefixed
/// temp file in the same directory, then `rename` over the target. A
/// concurrent reader sees either the complete old snapshot or the
/// complete new one — never a torn prefix of a dump in progress (rename
/// within one directory is atomic on POSIX). The temp name carries the
/// process id so two processes flushing into one directory cannot
/// clobber each other's staging file.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let file = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "dump path has no file name"))?;
    let tmp = dir.join(format!(".{}.tmp.{}", file.to_string_lossy(), std::process::id()));
    std::fs::write(&tmp, contents)?;
    let renamed = std::fs::rename(&tmp, path);
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed
}

/// Writes `<dir>/<prefix>.prom` and `<dir>/<prefix>.json` snapshots of the
/// global registry, creating `dir` if needed. Returns the two paths. Each
/// file is replaced atomically (temp file + rename), so a scrape racing a
/// dump never reads torn output.
pub fn dump(dir: &Path, prefix: &str) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let reg = crate::global();
    let prom = dir.join(format!("{prefix}.prom"));
    let json = dir.join(format!("{prefix}.json"));
    write_atomic(&prom, &reg.render_prometheus())?;
    write_atomic(&json, &reg.render_json())?;
    Ok((prom, json))
}

/// Renders a [`TimeStore`]'s retained history as plottable JSON: one
/// entry per series with its kind, labels and points array — counters as
/// `[t, value, rate]`, gauges as `[t, value]`, histograms as per-tick
/// deltas `[t, count, p50, p99]`. Cold path; allocate freely.
pub fn render_history_json(store: &crate::timeseries::TimeStore) -> String {
    use crate::timeseries::SeriesHistory;
    let series = store.series_histories();
    let mut out = String::from("{\n  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        let (kind, name, labels) = match s {
            SeriesHistory::Counter { name, labels, .. } => ("counter", name, labels),
            SeriesHistory::Gauge { name, labels, .. } => ("gauge", name, labels),
            SeriesHistory::Histogram { name, labels, .. } => ("histogram", name, labels),
        };
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"labels\": {}, \"points\": [",
            json_escape(name),
            json_labels(labels),
        );
        match s {
            SeriesHistory::Counter { points, .. } => {
                for (j, (t, v, rate)) in points.iter().enumerate() {
                    let _ = write!(
                        out,
                        "[{}, {}, {}]{}",
                        json_num(*t),
                        json_num(*v),
                        json_num(*rate),
                        if j + 1 == points.len() { "" } else { ", " }
                    );
                }
            }
            SeriesHistory::Gauge { points, .. } => {
                for (j, (t, v)) in points.iter().enumerate() {
                    let _ = write!(
                        out,
                        "[{}, {}]{}",
                        json_num(*t),
                        json_num(*v),
                        if j + 1 == points.len() { "" } else { ", " }
                    );
                }
            }
            SeriesHistory::Histogram { points, .. } => {
                for (j, (t, n, p50, p99)) in points.iter().enumerate() {
                    let _ = write!(
                        out,
                        "[{}, {n}, {}, {}]{}",
                        json_num(*t),
                        json_num(*p50),
                        json_num(*p99),
                        if j + 1 == points.len() { "" } else { ", " }
                    );
                }
            }
        }
        let _ = writeln!(out, "]}}{}", if i + 1 == series.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Background thread that [`dump`]s the global registry every `interval`
/// and once more on shutdown. Stops (and flushes) on drop.
pub struct Flusher {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Starts flushing to `<dir>/<prefix>.{prom,json}`.
    pub fn start(dir: impl Into<PathBuf>, prefix: &str, interval: Duration) -> io::Result<Flusher> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let prefix = prefix.to_string();
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ms-telemetry-flush".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                let mut stopped = lock.lock().expect("flusher lock");
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, _timeout) = cv
                        .wait_timeout(stopped, interval)
                        .expect("flusher lock");
                    stopped = guard;
                    let _ = dump(&dir, &prefix);
                    if *stopped {
                        break;
                    }
                }
            })
            .expect("spawn flusher");
        Ok(Flusher {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("flusher lock") = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_has_type_lines_and_series() {
        let r = Registry::new();
        r.counter("expose_requests_total", "requests offered").inc();
        r.counter_with("expose_served", &[("rate", "0.5")], "served").add(3);
        r.gauge("expose_depth", "queue depth").set(7.0);
        let h = r.histogram("expose_service_seconds", "service time");
        h.record(0.001);
        h.record_traced(0.002, 99);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE expose_requests_total counter"));
        assert!(text.contains("expose_requests_total 1"));
        assert!(text.contains("expose_served{rate=\"0.5\"} 3"));
        assert!(text.contains("# TYPE expose_depth gauge"));
        assert!(text.contains("expose_depth 7"));
        assert!(text.contains("# TYPE expose_service_seconds histogram"));
        assert!(text.contains("expose_service_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("expose_service_seconds_sum"));
        assert!(text.contains("# EXEMPLAR expose_service_seconds value=0.002 trace_id=99"));
    }

    #[test]
    fn json_snapshot_is_structurally_sound() {
        let r = Registry::new();
        r.counter("expose_json_total", "").add(5);
        let h = r.histogram("expose_json_seconds", "");
        for i in 1..=100 {
            h.record(i as f64 * 1e-4);
        }
        let json = r.render_json();
        assert!(json.contains("\"name\": \"expose_json_total\""));
        assert!(json.contains("\"value\": 5"));
        assert!(json.contains("\"count\": 100"));
        assert!(json.contains("\"p50\":"));
        // Balanced braces/brackets (cheap well-formedness check, no serde
        // in this crate).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// Satellite-3 regression: a scrape racing the dump loop must never
    /// read torn output. Before the temp-file + rename fix, `dump` wrote
    /// straight into the target and readers routinely caught half-written
    /// JSON. The reader thread hammers the file while the writer dumps a
    /// registry big enough that a direct write is observably non-atomic;
    /// every successful read must be a complete, brace-balanced document.
    #[test]
    fn scrape_racing_dump_never_reads_torn_json() {
        let dir = std::env::temp_dir().join(format!("ms_atomic_dump_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Bulk up the global registry so renders are many kilobytes.
        for i in 0..200 {
            crate::global()
                .counter_with("expose_torn_total", &[("shard", &format!("{i}"))], "")
                .add(i);
        }
        let json_path = dir.join("race.json");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_r = Arc::clone(&stop);
        let path_r = json_path.clone();
        let reader = std::thread::spawn(move || {
            let mut reads = 0u32;
            while !stop_r.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(s) = std::fs::read_to_string(&path_r) {
                    if !s.is_empty() {
                        reads += 1;
                        assert!(
                            s.ends_with("}\n") && s.matches('{').count() == s.matches('}').count(),
                            "torn read: {} bytes, ends {:?}",
                            s.len(),
                            &s[s.len().saturating_sub(16)..]
                        );
                    }
                }
            }
            reads
        });
        for _ in 0..50 {
            dump(&dir, "race").unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let reads = reader.join().unwrap();
        assert!(reads > 0, "reader never observed the file");
        // No staging litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_json_renders_all_kinds_plottably() {
        use crate::timeseries::{TimeStore, TsConfig};
        crate::set_enabled(true);
        let reg: &'static Registry = Box::leak(Box::new(Registry::new()));
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 8,
                hist_capacity: 4,
            },
        );
        let c = reg.counter_with("hist_json_total", &[("server", "s0")], "");
        let g = reg.gauge("hist_json_depth", "");
        let h = reg.histogram("hist_json_seconds", "");
        store.tick_at(0.0);
        c.add(40);
        g.set(3.0);
        h.record(0.25);
        store.tick_at(2.0);
        let json = render_history_json(&store);
        assert!(json.contains("\"name\": \"hist_json_total\""));
        assert!(json.contains("\"kind\": \"counter\""));
        assert!(json.contains("\"server\": \"s0\""));
        // Counter point: t=2, value 40, rate 20/s.
        assert!(json.contains("[2, 40, 20]"), "{json}");
        assert!(json.contains("\"kind\": \"gauge\""));
        assert!(json.contains("[2, 3]"));
        assert!(json.contains("\"kind\": \"histogram\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn flusher_writes_both_files() {
        let dir = std::env::temp_dir().join("ms_telemetry_flusher_test");
        let _ = std::fs::remove_dir_all(&dir);
        crate::global().counter("expose_flush_total", "").inc();
        {
            let _f = Flusher::start(&dir, "snap", Duration::from_millis(20)).unwrap();
            std::thread::sleep(Duration::from_millis(60));
        } // drop flushes once more
        let prom = std::fs::read_to_string(dir.join("snap.prom")).unwrap();
        let json = std::fs::read_to_string(dir.join("snap.json")).unwrap();
        assert!(prom.contains("expose_flush_total"));
        assert!(json.contains("expose_flush_total"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
