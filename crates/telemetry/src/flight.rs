//! Request-scoped flight recorder: a fixed-capacity, lock-light ring of
//! per-request lifecycle events.
//!
//! Aggregate histograms (PR 3) can show that p99 moved; they cannot show
//! *where* a tail request spent its time or why it was shed. The flight
//! recorder answers that: every request carries a `trace_id` from the wire
//! header through admission, sealing, dispatch and delivery, and each hop
//! appends one [`FlightEvent`] to a global ring buffer. Post-hoc,
//! [`harvest`] stitches events back into per-request chains, attributes
//! latency to five stages (wire, queue wait, batch wait, compute,
//! delivery), feeds the stage histograms in the metrics registry (with the
//! trace id of the slowest sample attached as an exemplar) and retains the
//! interesting chains — everything shed, everything past its deadline, and
//! the slowest K of the rest — for dumping as Chrome `trace_event` JSON.
//!
//! # Hot-path design
//!
//! The record path must be safe to leave on in production:
//!
//! - **No locks, no allocation.** The ring is a flat array of slots made of
//!   plain `AtomicU64`s, allocated once on first use. Threads claim slots
//!   in chunks of [`CHUNK`] with a single `fetch_add` on a global cursor
//!   and then hand them out from a thread-local `Cell` — the common case
//!   writes six relaxed/release stores and touches no shared cache line.
//! - **Per-slot seqlock.** Each slot's `stamp` holds `1 + global event
//!   index`; writers zero it, write the payload, then publish the new
//!   stamp with `Release`. Readers that observe a torn slot (stamp changed
//!   mid-read) simply skip it — an overwritten event is stale by
//!   definition.
//! - **Runtime kill switch, off by default.** [`record`] first does one
//!   relaxed load of the `RECORDING` flag and returns if it is clear (or
//!   if `trace_id == 0`, the "untraced" sentinel), so workloads that never
//!   call [`set_recording`] pay a single predictable branch per site.
//!   Unlike the metrics kill switch ([`crate::set_enabled`]), recording
//!   defaults to **off**: traces are a debugging instrument, not a
//!   steady-state metric.
//!
//! Wrap-around loses the *oldest* events; [`RING_CAP`] (65 536 slots,
//! ~3 MiB) holds the full seven-event chains of ~9 000 in-flight requests,
//! far beyond any queue this engine admits.

use crate::histogram::Histogram;
use crate::registry::Counter;
use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity in events. Power of two, multiple of [`CHUNK`].
pub const RING_CAP: usize = 1 << 16;
/// Events a thread claims per refill of its local lane.
const CHUNK: usize = 64;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// Lifecycle stages of one traced request, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Frame parsed off the socket. `a` = deadline in µs (0 = none).
    WireDecoded = 1,
    /// Passed the engine's admission gates (stop / backpressure).
    Admitted = 2,
    /// Pushed onto the open batch queue.
    Enqueued = 3,
    /// Sealed into a work batch. `a` = batch id; `b` packs the chosen
    /// slice rate (high 32 bits, f32 bits) and batch fill (low 32 bits).
    SealedIntoBatch = 4,
    /// A worker popped the batch. `a` = worker index.
    DispatchStart = 5,
    /// Batched forward finished on the worker.
    ComputeDone = 6,
    /// Response handed to the connection writer. Terminal.
    Delivered = 7,
    /// Refused. `a` = [`ShedCause`] code. Terminal.
    Shed = 8,
    /// An anytime refinement pass lifted the batch to a wider rate. `a` and
    /// `b` hold the from/to slice rates as f32 bits. Repeats once per
    /// ladder step between `ComputeDone` and `Delivered`.
    RefineStep = 9,
}

impl EventKind {
    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::WireDecoded,
            2 => EventKind::Admitted,
            3 => EventKind::Enqueued,
            4 => EventKind::SealedIntoBatch,
            5 => EventKind::DispatchStart,
            6 => EventKind::ComputeDone,
            7 => EventKind::Delivered,
            8 => EventKind::Shed,
            9 => EventKind::RefineStep,
            _ => return None,
        })
    }

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WireDecoded => "wire_decoded",
            EventKind::Admitted => "admitted",
            EventKind::Enqueued => "enqueued",
            EventKind::SealedIntoBatch => "sealed_into_batch",
            EventKind::DispatchStart => "dispatch_start",
            EventKind::ComputeDone => "compute_done",
            EventKind::Delivered => "delivered",
            EventKind::Shed => "shed",
            EventKind::RefineStep => "refine_step",
        }
    }
}

/// Why a traced request was refused. Codes match the wire protocol's
/// `WireShedReason` so a dumped trace reads the same as the client saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// Queue full at submit.
    Backpressure = 1,
    /// Dropped by the SLA controller at seal (Eq. 3 said no).
    Admission = 2,
    /// Engine shutting down.
    Stopping = 3,
    /// Server draining.
    Draining = 4,
}

impl ShedCause {
    pub fn from_code(code: u64) -> Option<ShedCause> {
        Some(match code {
            1 => ShedCause::Backpressure,
            2 => ShedCause::Admission,
            3 => ShedCause::Stopping,
            4 => ShedCause::Draining,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ShedCause::Backpressure => "backpressure",
            ShedCause::Admission => "admission",
            ShedCause::Stopping => "stopping",
            ShedCause::Draining => "draining",
        }
    }
}

/// One recorded lifecycle event, as read back out of the ring.
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    pub trace_id: u64,
    /// Nanoseconds since the recorder epoch (first record in the process).
    pub t_nanos: u64,
    pub kind: EventKind,
    /// Kind-specific argument — see [`EventKind`] docs.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
    /// Global event sequence number (total order of record calls).
    pub seq: u64,
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

struct Slot {
    /// 0 = never written; otherwise `1 + global event index`, published
    /// last with `Release`. Zeroed (invalidated) before each rewrite.
    stamp: AtomicU64,
    trace_id: AtomicU64,
    t_nanos: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    /// Next global event index to hand out (pre-modulo).
    cursor: AtomicU64,
    epoch: Instant,
}

static RING: OnceLock<Ring> = OnceLock::new();
static RECORDING: AtomicBool = AtomicBool::new(false);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

fn ring() -> &'static Ring {
    RING.get_or_init(|| {
        let mut slots = Vec::with_capacity(RING_CAP);
        for _ in 0..RING_CAP {
            slots.push(Slot {
                stamp: AtomicU64::new(0),
                trace_id: AtomicU64::new(0),
                t_nanos: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            });
        }
        Ring {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    })
}

thread_local! {
    /// (next global event index, slots left in the claimed chunk).
    static LANE: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

/// Turns the recorder on or off. Off (the default) reduces every record
/// site to one relaxed load and a branch.
pub fn set_recording(on: bool) {
    set_recording_inner(on);
}

fn set_recording_inner(on: bool) {
    if on {
        // Materialize the ring outside the hot path so the first traced
        // request doesn't pay the one-time allocation.
        let _ = ring();
    }
    RECORDING.store(on, Ordering::Release);
}

/// Whether the recorder is currently on (one relaxed load).
#[inline(always)]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Allocates a fresh process-unique trace id (never 0).
pub fn next_trace_id() -> u64 {
    TRACE_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Records one event. No-op when the recorder is off or `trace_id == 0`.
#[inline]
pub fn record(trace_id: u64, kind: EventKind, a: u64, b: u64) {
    if !recording() || trace_id == 0 {
        return;
    }
    record_slow(trace_id, kind, a, b);
}

#[inline(never)]
fn record_slow(trace_id: u64, kind: EventKind, a: u64, b: u64) {
    let ring = ring();
    let t = ring.epoch.elapsed().as_nanos() as u64;
    // Thread-local lane: one global fetch_add per CHUNK events. Fall back
    // to a direct claim if TLS is unavailable (thread teardown).
    let g = LANE
        .try_with(|lane| {
            let (idx, left) = lane.get();
            if left == 0 {
                let base = ring.cursor.fetch_add(CHUNK as u64, Ordering::Relaxed);
                lane.set((base + 1, CHUNK - 1));
                base
            } else {
                lane.set((idx + 1, left - 1));
                idx
            }
        })
        .unwrap_or_else(|_| ring.cursor.fetch_add(1, Ordering::Relaxed));
    let slot = &ring.slots[(g as usize) % RING_CAP];
    slot.stamp.store(0, Ordering::Relaxed);
    fence(Ordering::Release);
    slot.trace_id.store(trace_id, Ordering::Relaxed);
    slot.t_nanos.store(t, Ordering::Relaxed);
    slot.kind.store(kind as u64, Ordering::Relaxed);
    slot.a.store(a, Ordering::Relaxed);
    slot.b.store(b, Ordering::Relaxed);
    slot.stamp.store(g + 1, Ordering::Release);
}

// Typed convenience recorders — one per lifecycle stage.

/// Frame parsed off the socket; `deadline_micros` = 0 means no deadline.
#[inline]
pub fn wire_decoded(trace_id: u64, deadline_micros: u64) {
    record(trace_id, EventKind::WireDecoded, deadline_micros, 0);
}

#[inline]
pub fn admitted(trace_id: u64) {
    record(trace_id, EventKind::Admitted, 0, 0);
}

#[inline]
pub fn enqueued(trace_id: u64) {
    record(trace_id, EventKind::Enqueued, 0, 0);
}

#[inline]
pub fn sealed_into_batch(trace_id: u64, batch_id: u64, rate: f32, fill: f32) {
    let b = ((rate.to_bits() as u64) << 32) | fill.to_bits() as u64;
    record(trace_id, EventKind::SealedIntoBatch, batch_id, b);
}

#[inline]
pub fn dispatch_start(trace_id: u64, worker: u64) {
    record(trace_id, EventKind::DispatchStart, worker, 0);
}

#[inline]
pub fn compute_done(trace_id: u64) {
    record(trace_id, EventKind::ComputeDone, 0, 0);
}

#[inline]
pub fn delivered(trace_id: u64) {
    record(trace_id, EventKind::Delivered, 0, 0);
}

#[inline]
pub fn shed(trace_id: u64, cause: ShedCause) {
    record(trace_id, EventKind::Shed, cause as u64, 0);
}

/// Anytime refinement lifted the request's batch from one slice rate to a
/// wider one — one event per ladder step, between `compute_done` and
/// `delivered`.
#[inline]
pub fn refine_step(trace_id: u64, from: f32, to: f32) {
    record(
        trace_id,
        EventKind::RefineStep,
        from.to_bits() as u64,
        to.to_bits() as u64,
    );
}

/// Copies every currently-valid slot out of the ring, oldest first.
/// Slots being rewritten concurrently are skipped (seqlock read side).
pub fn snapshot() -> Vec<FlightEvent> {
    let ring = ring();
    let mut out = Vec::with_capacity(RING_CAP);
    for slot in ring.slots.iter() {
        let s1 = slot.stamp.load(Ordering::Acquire);
        if s1 == 0 {
            continue;
        }
        let ev = FlightEvent {
            trace_id: slot.trace_id.load(Ordering::Relaxed),
            t_nanos: slot.t_nanos.load(Ordering::Relaxed),
            kind: match EventKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                Some(k) => k,
                None => continue,
            },
            a: slot.a.load(Ordering::Relaxed),
            b: slot.b.load(Ordering::Relaxed),
            seq: s1 - 1,
        };
        fence(Ordering::Acquire);
        if slot.stamp.load(Ordering::Relaxed) != s1 {
            continue; // torn read: the slot was recycled under us
        }
        out.push(ev);
    }
    out.sort_by_key(|e| e.seq);
    out
}

// ---------------------------------------------------------------------------
// Chains and stage attribution
// ---------------------------------------------------------------------------

/// Names of the five latency stages, in order. Consecutive by
/// construction: they tile `[WireDecoded, Delivered]` exactly, so their
/// sum equals the server-side end-to-end latency.
pub const STAGE_NAMES: [&str; 5] = ["wire", "queue_wait", "batch_wait", "compute", "delivery"];

/// All recorded events of one trace id, in timestamp order.
#[derive(Debug, Clone)]
pub struct TraceChain {
    pub trace_id: u64,
    pub events: Vec<FlightEvent>,
}

impl TraceChain {
    /// First event of the given kind, if recorded.
    pub fn event(&self, kind: EventKind) -> Option<&FlightEvent> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Terminal event kind: `Delivered`, `Shed`, or `None` (in flight or
    /// partially overwritten).
    pub fn terminal(&self) -> Option<EventKind> {
        self.events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::Delivered | EventKind::Shed))
            .map(|e| e.kind)
    }

    pub fn shed_cause(&self) -> Option<ShedCause> {
        self.event(EventKind::Shed).and_then(|e| ShedCause::from_code(e.a))
    }

    /// Deadline carried on the wire, in µs (0 = none).
    pub fn deadline_micros(&self) -> u64 {
        self.event(EventKind::WireDecoded).map_or(0, |e| e.a)
    }

    /// Timestamps never decrease along the chain.
    pub fn is_monotonic(&self) -> bool {
        self.events.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos)
    }

    /// End-to-end nanoseconds from `WireDecoded` to the terminal event.
    pub fn total_nanos(&self) -> Option<u64> {
        let start = self.event(EventKind::WireDecoded)?.t_nanos;
        let end = self
            .events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::Delivered | EventKind::Shed))?
            .t_nanos;
        Some(end.saturating_sub(start))
    }

    /// A chain is complete when it begins at `WireDecoded`, reaches a
    /// terminal event, and — for delivered requests — passed through every
    /// intermediate stage.
    pub fn is_complete(&self) -> bool {
        if self.event(EventKind::WireDecoded).is_none() {
            return false;
        }
        match self.terminal() {
            Some(EventKind::Delivered) => [
                EventKind::Admitted,
                EventKind::Enqueued,
                EventKind::SealedIntoBatch,
                EventKind::DispatchStart,
                EventKind::ComputeDone,
            ]
            .iter()
            .all(|&k| self.event(k).is_some()),
            Some(EventKind::Shed) => true,
            _ => false,
        }
    }

    /// Refinement ladder steps recorded on this chain, in order, as
    /// `(from, to)` slice-rate pairs.
    pub fn refine_steps(&self) -> Vec<(f32, f32)> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::RefineStep)
            .map(|e| (f32::from_bits(e.a as u32), f32::from_bits(e.b as u32)))
            .collect()
    }

    /// The request missed the deadline it carried on the wire.
    pub fn deadline_missed(&self) -> bool {
        let d = self.deadline_micros();
        d > 0 && self.total_nanos().map_or(false, |t| t > d * 1000)
    }

    /// Per-stage durations in nanoseconds, `STAGE_NAMES` order, for
    /// complete delivered chains. The stages tile the chain: their sum is
    /// exactly `total_nanos()`.
    pub fn stage_nanos(&self) -> Option<[u64; 5]> {
        if self.terminal() != Some(EventKind::Delivered) || !self.is_complete() {
            return None;
        }
        let t = |k| self.event(k).map(|e| e.t_nanos);
        let wire = t(EventKind::WireDecoded)?;
        let enq = t(EventKind::Enqueued)?;
        let sealed = t(EventKind::SealedIntoBatch)?;
        let disp = t(EventKind::DispatchStart)?;
        let done = t(EventKind::ComputeDone)?;
        let deliv = t(EventKind::Delivered)?;
        Some([
            enq.saturating_sub(wire),
            sealed.saturating_sub(enq),
            disp.saturating_sub(sealed),
            done.saturating_sub(disp),
            deliv.saturating_sub(done),
        ])
    }
}

/// Groups the current ring contents into per-trace chains (oldest trace
/// first by first event).
pub fn chains() -> Vec<TraceChain> {
    chains_of(&snapshot())
}

fn chains_of(events: &[FlightEvent]) -> Vec<TraceChain> {
    let mut by_id: HashMap<u64, Vec<FlightEvent>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for &e in events {
        let v = by_id.entry(e.trace_id).or_default();
        if v.is_empty() {
            order.push(e.trace_id);
        }
        v.push(e);
    }
    order
        .into_iter()
        .map(|id| {
            let mut events = by_id.remove(&id).unwrap();
            events.sort_by_key(|e| (e.t_nanos, e.seq));
            TraceChain { trace_id: id, events }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Harvest: stage histograms, exemplars, tail sampling
// ---------------------------------------------------------------------------

/// Which completed chains the recorder retains for dumping.
#[derive(Debug, Clone, Copy)]
pub struct TailPolicy {
    /// Slowest K *served* chains kept per harvest window (shed and
    /// deadline-missed chains are always kept).
    pub slowest_k: usize,
    /// Upper bound on retained chains; oldest are evicted first.
    pub retain_cap: usize,
}

impl Default for TailPolicy {
    fn default() -> Self {
        TailPolicy { slowest_k: 8, retain_cap: 256 }
    }
}

struct StageMetrics {
    stages: [Histogram; 5],
    chains_served: Counter,
    chains_shed: Counter,
    chains_incomplete: Counter,
    deadline_missed: Counter,
}

fn stage_metrics() -> &'static StageMetrics {
    static METRICS: OnceLock<StageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = crate::global();
        let hist = |stage: &str| {
            reg.histogram_with(
                "flight_stage_seconds",
                &[("stage", stage)],
                "per-request latency attributed to one lifecycle stage",
            )
        };
        let outcome = |o: &str| {
            reg.counter_with(
                "flight_chains_total",
                &[("outcome", o)],
                "completed trace chains folded by harvest()",
            )
        };
        StageMetrics {
            stages: [
                hist(STAGE_NAMES[0]),
                hist(STAGE_NAMES[1]),
                hist(STAGE_NAMES[2]),
                hist(STAGE_NAMES[3]),
                hist(STAGE_NAMES[4]),
            ],
            chains_served: outcome("served"),
            chains_shed: outcome("shed"),
            chains_incomplete: outcome("incomplete"),
            deadline_missed: reg.counter(
                "flight_deadline_missed_total",
                "traced requests whose end-to-end latency exceeded their wire deadline",
            ),
        }
    })
}

struct HarvestState {
    /// Highest event seq already folded; events at or below are skipped.
    watermark: u64,
    policy: TailPolicy,
    retained: VecDeque<TraceChain>,
}

fn harvest_state() -> &'static Mutex<HarvestState> {
    static STATE: OnceLock<Mutex<HarvestState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(HarvestState {
            watermark: 0,
            policy: TailPolicy::default(),
            retained: VecDeque::new(),
        })
    })
}

/// Replaces the tail-sampling policy for subsequent harvests.
pub fn set_tail_policy(policy: TailPolicy) {
    harvest_state().lock().unwrap().policy = policy;
}

/// Folds newly-terminated chains out of the ring: records per-stage
/// histograms (attaching the trace id as an exemplar), counts outcomes,
/// and retains shed / deadline-missed / slowest-K chains for dumping.
/// Returns how many chains were folded. Cold path; call from scrape
/// handlers, tests, or experiment teardown — never per request.
pub fn harvest() -> usize {
    let events = snapshot();
    let mut st = harvest_state().lock().unwrap();
    let watermark = st.watermark;
    // A chain is folded when its terminal event is new since last harvest.
    let new_terminal: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.seq > watermark && matches!(e.kind, EventKind::Delivered | EventKind::Shed)
        })
        .map(|e| e.trace_id)
        .collect();
    st.watermark = events.last().map_or(watermark, |e| e.seq.max(watermark));
    if new_terminal.is_empty() {
        return 0;
    }
    let m = stage_metrics();
    let mut folded = 0usize;
    let mut served: Vec<TraceChain> = Vec::new();
    for chain in chains_of(&events) {
        if !new_terminal.contains(&chain.trace_id) {
            continue;
        }
        folded += 1;
        if !chain.is_complete() {
            m.chains_incomplete.inc();
            continue;
        }
        if chain.deadline_missed() {
            m.deadline_missed.inc();
        }
        match chain.terminal() {
            Some(EventKind::Shed) => {
                m.chains_shed.inc();
                retain(&mut st, chain);
            }
            Some(EventKind::Delivered) => {
                m.chains_served.inc();
                if let Some(stages) = chain.stage_nanos() {
                    for (h, &ns) in m.stages.iter().zip(stages.iter()) {
                        h.record_traced(ns as f64 * 1e-9, chain.trace_id);
                    }
                }
                if chain.deadline_missed() {
                    retain(&mut st, chain);
                } else {
                    served.push(chain);
                }
            }
            _ => unreachable!("chain passed is_complete() without a terminal event"),
        }
    }
    // Slowest K of the uneventful served chains round out the tail sample.
    served.sort_by_key(|c| std::cmp::Reverse(c.total_nanos().unwrap_or(0)));
    let k = st.policy.slowest_k.min(served.len());
    for chain in served.into_iter().take(k) {
        retain(&mut st, chain);
    }
    folded
}

fn retain(st: &mut HarvestState, chain: TraceChain) {
    while st.retained.len() >= st.policy.retain_cap {
        st.retained.pop_front();
    }
    st.retained.push_back(chain);
}

/// Chains retained by tail sampling, oldest first.
pub fn retained() -> Vec<TraceChain> {
    harvest_state().lock().unwrap().retained.iter().cloned().collect()
}

/// Clears the retained set and fast-forwards the harvest watermark past
/// everything currently in the ring. Ring slots themselves are not wiped —
/// trace ids are process-unique, so stale events cannot collide.
pub fn reset() {
    let tail = snapshot().last().map_or(0, |e| e.seq);
    let mut st = harvest_state().lock().unwrap();
    st.watermark = st.watermark.max(tail);
    st.retained.clear();
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

/// Renders chains as Chrome `trace_event` JSON (the "JSON Array Format"
/// with an object wrapper), loadable in `chrome://tracing` and Perfetto.
/// Served chains become one complete (`"ph":"X"`) slice per stage; shed
/// chains end in an instant event naming the cause. Each chain gets its
/// own `tid` so Perfetto draws one lane per request.
pub fn chrome_trace_json(chains: &[TraceChain]) -> String {
    let mut out = String::with_capacity(256 + chains.len() * 640);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(s);
    };
    emit(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"ms flight recorder\"}}",
        &mut first,
    );
    for (lane, chain) in chains.iter().enumerate() {
        let tid = lane + 1;
        emit(
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"trace {:#x}\"}}}}",
                chain.trace_id
            ),
            &mut first,
        );
        let us = |ns: u64| ns as f64 / 1000.0;
        if let Some(stages) = chain.stage_nanos() {
            let mut t = chain.event(EventKind::WireDecoded).unwrap().t_nanos;
            for (name, &dur) in STAGE_NAMES.iter().zip(stages.iter()) {
                emit(
                    &format!(
                        "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"X\",\
                         \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"trace_id\":{},\"deadline_us\":{}}}}}",
                        us(t),
                        us(dur),
                        chain.trace_id,
                        chain.deadline_micros()
                    ),
                    &mut first,
                );
                t += dur;
            }
        } else {
            // Shed or partial chain: emit each raw event as an instant.
            for e in &chain.events {
                let label = if e.kind == EventKind::Shed {
                    format!(
                        "shed ({})",
                        ShedCause::from_code(e.a).map_or("?", |c| c.name())
                    )
                } else {
                    e.kind.name().to_string()
                };
                emit(
                    &format!(
                        "{{\"name\":\"{label}\",\"cat\":\"request\",\"ph\":\"i\",\
                         \"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"trace_id\":{}}}}}",
                        us(e.t_nanos),
                        chain.trace_id
                    ),
                    &mut first,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Harvests, then writes the retained chains to
/// `<dir>/trace_<name>.json` in Chrome `trace_event` format. Returns the
/// path written.
pub fn export_chrome_trace(dir: impl AsRef<Path>, name: &str) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    harvest();
    let path = dir.join(format!("trace_{name}.json"));
    std::fs::write(&path, chrome_trace_json(&retained()))?;
    Ok(path)
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    // Flight state (ring, recording flag, harvest watermark) is global;
    // run the stateful tests under one lock and give each its own trace-id
    // range so concurrent crate tests cannot interleave ids.
    static GATE: Mutex<()> = Mutex::new(());

    fn full_chain(id: u64) {
        wire_decoded(id, 5_000);
        admitted(id);
        enqueued(id);
        sealed_into_batch(id, 7, 0.75, 0.5);
        dispatch_start(id, 2);
        compute_done(id);
        delivered(id);
    }

    fn chain_for(id: u64) -> TraceChain {
        chains()
            .into_iter()
            .find(|c| c.trace_id == id)
            .unwrap_or_else(|| panic!("trace {id} not found in ring"))
    }

    #[test]
    fn record_and_reassemble_chains() {
        let _g = GATE.lock().unwrap();
        set_recording(true);
        let base = 0xA000_0000u64;
        full_chain(base + 1);
        wire_decoded(base + 2, 0);
        shed(base + 2, ShedCause::Backpressure);

        let served = chain_for(base + 1);
        assert_eq!(served.events.len(), 7);
        assert!(served.is_monotonic());
        assert!(served.is_complete());
        assert_eq!(served.terminal(), Some(EventKind::Delivered));
        assert_eq!(served.deadline_micros(), 5_000);
        let stages = served.stage_nanos().expect("served chain has stages");
        assert_eq!(
            stages.iter().sum::<u64>(),
            served.total_nanos().unwrap(),
            "stages must tile the chain exactly"
        );
        let sealed = served.event(EventKind::SealedIntoBatch).unwrap();
        assert_eq!(sealed.a, 7);
        assert_eq!(f32::from_bits((sealed.b >> 32) as u32), 0.75);
        assert_eq!(f32::from_bits(sealed.b as u32), 0.5);

        let refused = chain_for(base + 2);
        assert!(refused.is_complete());
        assert_eq!(refused.terminal(), Some(EventKind::Shed));
        assert_eq!(refused.shed_cause(), Some(ShedCause::Backpressure));
        set_recording(false);
    }

    #[test]
    fn kill_switch_and_zero_id_drop_events() {
        let _g = GATE.lock().unwrap();
        set_recording(false);
        full_chain(0xB000_0001);
        assert!(chains().iter().all(|c| c.trace_id != 0xB000_0001));
        set_recording(true);
        delivered(0); // untraced sentinel
        assert!(chains().iter().all(|c| c.trace_id != 0));
        set_recording(false);
    }

    #[test]
    fn ring_wraps_without_losing_newest() {
        let _g = GATE.lock().unwrap();
        set_recording(true);
        let base = 0xC000_0000u64;
        for i in 0..(RING_CAP as u64 + 500) {
            delivered(base + i);
        }
        let events = snapshot();
        assert!(events.len() <= RING_CAP);
        // The newest events must all be present.
        let newest: Vec<u64> = events
            .iter()
            .filter(|e| e.trace_id >= base + RING_CAP as u64)
            .map(|e| e.trace_id)
            .collect();
        assert_eq!(newest.len(), 500);
        set_recording(false);
    }

    #[test]
    fn harvest_tail_sampling_and_stage_metrics() {
        let _g = GATE.lock().unwrap();
        set_recording(true);
        reset();
        set_tail_policy(TailPolicy { slowest_k: 2, retain_cap: 64 });
        let base = 0xD000_0000u64;
        // Five served chains, one shed, one with a 1 µs deadline that the
        // chain (however fast) cannot meet... a deadline of 0 means none,
        // so use 1 ns-scale: deadline_micros = 0 ⇒ not missed.
        for i in 0..5 {
            full_chain(base + i);
        }
        wire_decoded(base + 10, 0);
        admitted(base + 10);
        enqueued(base + 10);
        shed(base + 10, ShedCause::Admission);

        let folded = harvest();
        assert_eq!(folded, 6);
        let kept = retained();
        // 1 shed chain + slowest 2 of the 5 served.
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().any(|c| c.trace_id == base + 10));
        // Stage histograms saw 5 served chains.
        let m = stage_metrics();
        assert!(m.stages[0].count() >= 5);
        assert!(m.chains_served.get() >= 5);
        assert!(m.chains_shed.get() >= 1);
        // Exemplar carries a trace id from this batch.
        let (_, id) = m.stages[0].exemplar().expect("exemplar recorded");
        assert!(id != 0);
        // A second harvest with nothing new folds nothing.
        assert_eq!(harvest(), 0);
        set_recording(false);
    }

    #[test]
    fn chrome_trace_json_is_structurally_valid() {
        let _g = GATE.lock().unwrap();
        set_recording(true);
        let base = 0xE000_0000u64;
        full_chain(base + 1);
        wire_decoded(base + 2, 100);
        shed(base + 2, ShedCause::Draining);
        let sel: Vec<TraceChain> = chains()
            .into_iter()
            .filter(|c| c.trace_id == base + 1 || c.trace_id == base + 2)
            .collect();
        assert_eq!(sel.len(), 2);
        let json = chrome_trace_json(&sel);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "served chain emits slices");
        assert!(json.contains("shed (draining)"), "shed chain emits an instant");
        for stage in STAGE_NAMES {
            assert!(json.contains(&format!("\"name\":\"{stage}\"")));
        }
        // Balanced braces/brackets outside string context (no escapes or
        // braces inside our generated strings).
        let (mut braces, mut brackets, mut in_str) = (0i64, 0i64, false);
        for ch in json.chars() {
            match ch {
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
            assert!(braces >= 0 && brackets >= 0);
        }
        assert_eq!((braces, brackets, in_str), (0, 0, false));
        set_recording(false);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
    }
}
