//! Log-linear bucketed histogram with atomic, allocation-free recording.
//!
//! Values are non-negative `f64`s (seconds, losses, norms). The positive
//! range `[2^MIN_EXP, 2^MAX_EXP)` is split into octaves, each subdivided
//! linearly into [`SUBS`] sub-buckets taken straight from the top mantissa
//! bits — so `bucket_index` is a couple of shifts on the IEEE-754 bits,
//! no `log2` call. Everything below the range (including zero, negatives
//! and NaN) lands in the underflow bucket; everything at or above the top
//! in the overflow bucket.
//!
//! Percentile queries walk a relaxed snapshot of the bucket counts and
//! return the *upper bound* of the bucket holding the requested rank.
//! Because the exact nearest-rank percentile of the recorded samples lies
//! inside that same bucket, the answer is always within one bucket width
//! of the true sorted-vector percentile (property-tested in
//! `tests/percentile_prop.rs`). With 16 sub-buckets per octave the bucket
//! width is at most ~6.25 % of the value.

use crate::registry::{Desc, PaddedAtomicU64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per power-of-two octave.
pub const SUBS: usize = 16;
/// Smallest representable exponent: values below `2^MIN_EXP` underflow.
/// `2^-30 ≈ 0.93 ns` — finer than any duration we time.
pub const MIN_EXP: i32 = -30;
/// Largest exponent: values at or above `2^MAX_EXP ≈ 1.05e6` overflow.
pub const MAX_EXP: i32 = 20;
/// Total bucket count: underflow + octaves·SUBS + overflow.
pub const NBUCKETS: usize = 2 + ((MAX_EXP - MIN_EXP) as usize) * SUBS;

/// Lower edge of the covered range.
pub fn min_value() -> f64 {
    (MIN_EXP as f64).exp2()
}

/// Upper edge of the covered range.
pub fn max_value() -> f64 {
    (MAX_EXP as f64).exp2()
}

/// Maps a sample to its bucket index.
#[inline]
pub fn bucket_index(v: f64) -> usize {
    // `!(v >= min)` also catches NaN, negatives and zero.
    if !(v >= min_value()) {
        return 0;
    }
    if v >= max_value() {
        return NBUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> 48) & 0xf) as usize; // top log2(SUBS) mantissa bits
    1 + ((exp - MIN_EXP) as usize) * SUBS + sub
}

/// `[lower, upper)` bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < NBUCKETS);
    if i == 0 {
        return (0.0, min_value());
    }
    if i == NBUCKETS - 1 {
        return (max_value(), f64::INFINITY);
    }
    let j = i - 1;
    let base = ((MIN_EXP + (j / SUBS) as i32) as f64).exp2();
    let s = (j % SUBS) as f64;
    (
        base * (1.0 + s / SUBS as f64),
        base * (1.0 + (s + 1.0) / SUBS as f64),
    )
}

pub(crate) struct HistogramCell {
    pub(crate) desc: Desc,
    buckets: Box<[AtomicU64]>,
    // Padded like the counter/gauge cells: the CAS'd sum is the one field
    // of this cell written per record, and must not share a line with a
    // neighbouring cell's hot atomic.
    sum_bits: PaddedAtomicU64,
    // Exemplar: the largest sample recorded with a trace id attached, so a
    // scrape can jump from "p99 moved" straight to the flight-recorder
    // chain that moved it. `exemplar_id == 0` means none yet.
    exemplar_bits: AtomicU64,
    exemplar_id: AtomicU64,
}

/// A cloneable handle to one registered histogram. Recording is a bucket
/// `fetch_add` plus a CAS-loop float add to the running sum — lock-free
/// and allocation-free.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCell>);

impl Histogram {
    pub(crate) fn new_cell(desc: Desc) -> Histogram {
        Histogram(Arc::new(HistogramCell {
            desc,
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: PaddedAtomicU64::new(0f64.to_bits()),
            exemplar_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplar_id: AtomicU64::new(0),
        }))
    }

    /// A free-standing histogram not attached to any registry. For tests
    /// and ad-hoc measurement.
    pub fn detached(name: &str) -> Histogram {
        Histogram::new_cell(Desc::new(name, &[], ""))
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.0.desc.name
    }

    /// Label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.0.desc.labels
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Float sum via CAS: lock-free, and precise enough for means.
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one sample and, if it is the largest traced sample so far,
    /// remembers `trace_id` as this histogram's exemplar. `trace_id == 0`
    /// degrades to a plain [`Histogram::record`].
    pub fn record_traced(&self, v: f64, trace_id: u64) {
        self.record(v);
        if trace_id == 0 || !crate::enabled() {
            return;
        }
        let mut cur = self.0.exemplar_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.exemplar_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // Racing writers may pair a slightly older id with the
                    // max value; exemplars are a debugging hint, not an
                    // exact max, so last-writer-wins is fine.
                    self.0.exemplar_id.store(trace_id, Ordering::Relaxed);
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// `(value, trace_id)` of the largest traced sample, if any.
    pub fn exemplar(&self) -> Option<(f64, u64)> {
        let id = self.0.exemplar_id.load(Ordering::Relaxed);
        if id == 0 {
            return None;
        }
        Some((f64::from_bits(self.0.exemplar_bits.load(Ordering::Relaxed)), id))
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`), resolved to the upper
    /// bound of the bucket holding rank `round((n-1)·q)`. Returns 0 when
    /// empty. Matches the exact sorted-vector percentile to within one
    /// bucket width for in-range samples.
    pub fn percentile(&self, q: f64) -> f64 {
        let mut counts = [0u64; NBUCKETS];
        self.snapshot_counts_into(&mut counts);
        percentile_from_counts(&counts, q)
    }

    /// Copies a relaxed snapshot of the per-bucket counts into `out`
    /// (length [`NBUCKETS`]) without allocating. This is the primitive the
    /// time-series sampler differences: `snapshot(t₂) − snapshot(t₁)` is
    /// the bucket distribution of exactly the samples recorded in
    /// `(t₁, t₂]`, from which [`percentile_from_counts`] yields *windowed*
    /// percentiles instead of lifetime-cumulative ones.
    pub fn snapshot_counts_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), NBUCKETS, "snapshot buffer must hold NBUCKETS");
        for (slot, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
    }

    /// `(upper_bound, cumulative_count)` for every non-empty bucket, in
    /// ascending bound order — the shape Prometheus `_bucket{le=…}` wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                let (lo, hi) = bucket_bounds(i);
                out.push((if hi.is_finite() { hi } else { lo }, cum));
            }
        }
        out
    }
}

/// Nearest-rank percentile over an explicit bucket-count array (length
/// [`NBUCKETS`]) — the same resolution contract as
/// [`Histogram::percentile`], but usable on a *delta* of two snapshots
/// taken with [`Histogram::snapshot_counts_into`]. Returns 0 when the
/// counts sum to zero. Allocation-free.
pub fn percentile_from_counts(counts: &[u64], q: f64) -> f64 {
    assert_eq!(counts.len(), NBUCKETS, "counts must hold NBUCKETS entries");
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let rank = ((n - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum > rank {
            let (lo, hi) = bucket_bounds(i);
            // The overflow bucket has no finite upper bound; its lower
            // bound is the least-wrong finite answer.
            return if hi.is_finite() { hi } else { lo };
        }
    }
    unreachable!("rank below total count");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        for v in [1e-9, 3.7e-6, 0.001, 0.5, 1.0, 1.5, 123.0, 9.9e5] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (bucket {i})");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(2e6), NBUCKETS - 1);
    }

    #[test]
    fn adjacent_buckets_share_edges() {
        for i in 1..NBUCKETS - 2 {
            let (_, hi) = bucket_bounds(i);
            let (lo, _) = bucket_bounds(i + 1);
            assert!(
                (hi - lo).abs() < hi * 1e-12,
                "gap between bucket {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn percentile_of_known_distribution() {
        let h = Histogram::detached("t");
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-9);
        let p50 = h.percentile(0.50);
        assert!((p50 - 0.5).abs() < 0.5 * 0.07, "p50 {p50}");
        let p99 = h.percentile(0.99);
        assert!((p99 - 0.99).abs() < 0.99 * 0.07, "p99 {p99}");
        assert!(h.percentile(0.99) >= h.percentile(0.50));
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(Histogram::detached("t").percentile(0.99), 0.0);
    }

    #[test]
    fn snapshot_delta_isolates_a_window() {
        let h = Histogram::detached("t");
        // Epoch 1: slow samples around 1s.
        for _ in 0..100 {
            h.record(1.0);
        }
        let mut before = [0u64; NBUCKETS];
        h.snapshot_counts_into(&mut before);
        // Epoch 2: fast samples around 1ms.
        for _ in 0..100 {
            h.record(1e-3);
        }
        let mut after = [0u64; NBUCKETS];
        h.snapshot_counts_into(&mut after);

        let mut delta = [0u64; NBUCKETS];
        for i in 0..NBUCKETS {
            delta[i] = after[i] - before[i];
        }
        // Lifetime p99 still sees epoch 1; the windowed delta does not.
        assert!(h.percentile(0.99) > 0.9);
        let windowed = percentile_from_counts(&delta, 0.99);
        assert!(windowed < 2e-3, "windowed p99 {windowed}");
        assert_eq!(delta.iter().sum::<u64>(), 100);
        assert_eq!(percentile_from_counts(&[0u64; NBUCKETS], 0.5), 0.0);
    }

    #[test]
    fn exemplar_tracks_the_slowest_traced_sample() {
        let h = Histogram::detached("t");
        assert_eq!(h.exemplar(), None);
        h.record_traced(0.010, 0); // untraced: counted but no exemplar
        assert_eq!(h.count(), 1);
        assert_eq!(h.exemplar(), None);
        h.record_traced(0.020, 41);
        h.record_traced(0.005, 42); // faster: does not displace
        assert_eq!(h.exemplar(), Some((0.020, 41)));
        h.record_traced(0.500, 43);
        assert_eq!(h.exemplar(), Some((0.500, 43)));
        assert_eq!(h.count(), 4);
    }
}
