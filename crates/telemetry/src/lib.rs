//! Zero-cost observability for the model-slicing stack.
//!
//! The serving story of §4.1 — pick the widest slice rate whose predicted
//! cost fits the instantaneous budget — is only operable in production if
//! the operator can *see* what the controller is doing: per-rate service
//! times, shed decisions, queue depth, batch fill. This crate provides that
//! visibility without taxing the hot paths it observes:
//!
//! - [`registry`] — a global, lock-free-on-record metrics registry of named
//!   **counters**, **gauges** and log-bucketed **histograms**. Registration
//!   (cold) takes a mutex and allocates; recording (hot) is a handful of
//!   relaxed atomic ops on pre-resolved handles and never allocates.
//! - [`histogram`] — log-linear bucketing (16 sub-buckets per octave,
//!   ≤ ~6 % relative bucket width) with percentile queries that are exact
//!   to within one bucket width of the true sorted-vector percentile.
//! - [`spans`] — a thread-local span tracer with RAII guards
//!   (`span!("gemm.pack_a")`) aggregating per-site call count, total time
//!   and self time. Compiled in only under the `telemetry-spans` feature;
//!   without it every site is a zero-sized no-op that vanishes entirely.
//! - [`expose`] — Prometheus text-format and JSON snapshot writers plus a
//!   periodic [`Flusher`] thread that dumps both to a directory (the
//!   engine and the experiment harness point it at `results/logs/`).
//! - [`flight`] — a request-scoped flight recorder: per-request lifecycle
//!   events (decode → admit → seal → dispatch → deliver/shed) in a
//!   fixed-capacity atomic ring, reassembled post-hoc into per-stage
//!   latency attribution, tail-sampled chains and Chrome `trace_event`
//!   JSON. Off by default ([`flight::set_recording`]).
//! - [`timeseries`] — a fixed-capacity in-process time-series store
//!   sampled from the registry by a background [`timeseries::Sampler`]:
//!   ring-buffer histories per series, windowed counter rates by snapshot
//!   differencing, and *windowed-delta* histogram percentiles (true
//!   per-window p50/p99, not lifetime-cumulative). Warm ticks allocate
//!   nothing.
//! - [`slo`] — Google-SRE-style multi-window burn-rate tracking over the
//!   time-series store, with a hysteresis alert state machine
//!   (`firing`/`resolved`) exposed as gauges, transition counters and a
//!   bounded event ring.
//!
//! Snapshots can also be pulled over the network: the `ms-net` TCP server
//! answers a `Metrics` frame with [`Registry::render_prometheus`] output
//! from the serving process, so a live scrape (`ms-net`'s `scrape` binary, or
//! any client speaking the frame protocol) needs no file [`Flusher`] at
//! all.
//!
//! # Kill switch
//!
//! [`set_enabled`] flips one global `AtomicBool` that every record path
//! checks first. It exists so `scripts/perfcheck.sh` can measure the cost
//! of always-on recording by running the same workload with recording on
//! and off inside a single process (the ≤ 2 % overhead gate).

pub mod expose;
pub mod flight;
pub mod histogram;
pub mod registry;
pub mod slo;
pub mod spans;
pub mod timeseries;

pub use expose::Flusher;
pub use histogram::Histogram;
pub use registry::{global, Counter, Gauge, Registry};
pub use slo::{SloEngine, SloSpec, SloStatus};
pub use timeseries::{Sampler, TimeStore, TsConfig, WindowedHistogram};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric recording and span timing at runtime.
/// Handles stay valid; records issued while disabled are dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether recording is currently enabled (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` when this build compiled the span tracer in
/// (`--features telemetry-spans`).
pub const fn spans_compiled() -> bool {
    cfg!(feature = "telemetry-spans")
}

/// Opens a named span, returning an RAII guard that records elapsed time
/// into the global span table when dropped.
///
/// ```ignore
/// let _g = ms_telemetry::span!("gemm.pack_a");
/// ```
///
/// Each call site gets one static [`spans::SpanSite`] registered lazily on
/// first entry; afterwards enter/exit is a `Instant::now()` pair, a
/// thread-local stack push/pop and three relaxed `fetch_add`s — no
/// allocation, no locks. Guards must be dropped in LIFO order per thread,
/// which scope-bound `let _g = …` bindings guarantee.
///
/// Without the `telemetry-spans` feature the expansion is a zero-sized
/// guard and an empty `#[inline(always)]` call: the optimizer removes the
/// site entirely, so uninstrumented builds are bit-for-bit as fast as if
/// the macro were never written.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __MS_SPAN_SITE: $crate::spans::SpanSite = $crate::spans::SpanSite::new($name);
        $crate::spans::SpanGuard::enter(&__MS_SPAN_SITE)
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn kill_switch_drops_records() {
        let c = super::global().counter("lib_test_killswitch_total", "test");
        c.inc();
        assert_eq!(c.get(), 1);
        super::set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 1);
        super::set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }
}
