//! The metrics registry: named counters, gauges and histograms.
//!
//! Registration is get-or-create keyed on `(name, labels)` under one mutex
//! — cold, allocating, idempotent (two callers registering the same series
//! share one cell). The returned handles are `Arc`s onto atomic cells;
//! recording through a handle is lock-free and allocation-free, which is
//! what lets the GEMM inner loops, the buffer pool and the engine workers
//! record without perturbing the zero-allocation guarantees of PR 1/PR 2.

use crate::histogram::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Metric identity: name, label pairs, help text.
#[derive(Debug, Clone)]
pub(crate) struct Desc {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) help: String,
}

impl Desc {
    pub(crate) fn new(name: &str, labels: &[(&str, &str)], help: &str) -> Desc {
        Desc {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
        }
    }

    fn key(&self) -> (String, Vec<(String, String)>) {
        (self.name.clone(), self.labels.clone())
    }
}

/// An `AtomicU64` alone on its cache line. Metric cells are small heap
/// allocations made back to back at registration, so without padding two
/// cells' hot atomics can share a line — and whether the submit thread's
/// counter false-shares with a worker-written gauge becomes allocator
/// luck, costing a few percent of throughput on some runs and none on
/// others. The padding makes the record path's cost deterministic.
#[repr(align(64))]
pub(crate) struct PaddedAtomicU64(AtomicU64);

impl PaddedAtomicU64 {
    pub(crate) fn new(v: u64) -> Self {
        PaddedAtomicU64(AtomicU64::new(v))
    }

    #[inline]
    pub(crate) fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    #[inline]
    pub(crate) fn store(&self, v: u64, order: Ordering) {
        self.0.store(v, order)
    }

    #[inline]
    pub(crate) fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        self.0.fetch_add(v, order)
    }

    #[inline]
    pub(crate) fn compare_exchange_weak(
        &self,
        cur: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange_weak(cur, new, success, failure)
    }
}

pub(crate) struct CounterCell {
    pub(crate) desc: Desc,
    value: PaddedAtomicU64,
}

/// Monotone counter handle. `inc`/`add` are one relaxed `fetch_add`.
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<CounterCell>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.0.desc.name
    }

    /// Label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.0.desc.labels
    }
}

pub(crate) struct GaugeCell {
    pub(crate) desc: Desc,
    bits: PaddedAtomicU64,
}

/// Gauge handle holding an `f64` (stored as bits in an `AtomicU64`).
/// `set` is one relaxed store; `add` is a CAS loop.
#[derive(Clone)]
pub struct Gauge(pub(crate) Arc<GaugeCell>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.0.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.0.desc.name
    }

    /// Label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.0.desc.labels
    }
}

enum Slot {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) counters: Vec<Counter>,
    pub(crate) gauges: Vec<Gauge>,
    pub(crate) histograms: Vec<Histogram>,
    index: HashMap<(String, Vec<(String, String)>), Slot>,
}

/// A metrics registry. Most code uses the process-wide [`global`] one;
/// fresh instances exist for tests that need isolation.
#[derive(Default)]
pub struct Registry {
    pub(crate) inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Gets or registers a counter with labels. Panics if `(name, labels)`
    /// is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let desc = Desc::new(name, labels, help);
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.index.get(&desc.key()) {
            Some(Slot::Counter(i)) => inner.counters[*i].clone(),
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let c = Counter(Arc::new(CounterCell {
                    desc: desc.clone(),
                    value: PaddedAtomicU64::new(0),
                }));
                let i = inner.counters.len();
                inner.counters.push(c.clone());
                inner.index.insert(desc.key(), Slot::Counter(i));
                c
            }
        }
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Gets or registers a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let desc = Desc::new(name, labels, help);
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.index.get(&desc.key()) {
            Some(Slot::Gauge(i)) => inner.gauges[*i].clone(),
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let g = Gauge(Arc::new(GaugeCell {
                    desc: desc.clone(),
                    bits: PaddedAtomicU64::new(0f64.to_bits()),
                }));
                let i = inner.gauges.len();
                inner.gauges.push(g.clone());
                inner.index.insert(desc.key(), Slot::Gauge(i));
                g
            }
        }
    }

    /// Gets or registers an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Clones every handle registered after the per-kind watermarks —
    /// the incremental discovery step of the time-series sampler. Indices
    /// are stable (the per-kind vectors only ever append), so a caller
    /// tracking `(counters, gauges, histograms)` lengths sees each series
    /// exactly once, and the registry mutex is held only for the clone of
    /// the new tail, never across a sampling pass.
    pub(crate) fn handles_since(
        &self,
        counters_seen: usize,
        gauges_seen: usize,
        histograms_seen: usize,
    ) -> (Vec<Counter>, Vec<Gauge>, Vec<Histogram>) {
        let inner = self.inner.lock().expect("registry lock");
        (
            inner.counters[counters_seen..].to_vec(),
            inner.gauges[gauges_seen..].to_vec(),
            inner.histograms[histograms_seen..].to_vec(),
        )
    }

    /// Gets or registers a histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let desc = Desc::new(name, labels, help);
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.index.get(&desc.key()) {
            Some(Slot::Histogram(i)) => inner.histograms[*i].clone(),
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let h = Histogram::new_cell(desc.clone());
                let i = inner.histograms.len();
                inner.histograms.push(h.clone());
                inner.index.insert(desc.key(), Slot::Histogram(i));
                h
            }
        }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_cells() {
        let r = Registry::new();
        let a = r.counter("reqs_total", "requests");
        let b = r.counter("reqs_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.counter_with("served", &[("rate", "0.25")], "");
        let b = r.counter_with("served", &[("rate", "1.0")], "");
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    fn gauge_set_add_get() {
        let r = Registry::new();
        let g = r.gauge("depth", "");
        g.set(4.0);
        g.add(-1.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("concurrent_total", "");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
