//! Multi-window SLO burn-rate tracking and alerting with hysteresis.
//!
//! Google-SRE-style burn-rate alerting over the [`timeseries`] store
//! (scaled from hours to seconds for an in-process serving SLO): an SLO
//! is a *bad-events / total-events* counter pair plus an objective
//! (`0.999` → an error budget of `0.1 %`). The **burn rate** over a
//! window is the observed bad ratio divided by the budget — burn 1 means
//! the budget is being consumed exactly at the sustainable pace, burn 14
//! means fourteen times too fast.
//!
//! Each SLO evaluates two alert rules, each over a *pair* of windows so a
//! spike must both register (long window) and still be happening (short
//! window) before paging:
//!
//! * **fast** — short 5 s / long 60 s, high threshold (default 14.4):
//!   catches an acute burst within seconds;
//! * **slow** — short 60 s / long 600 s, low threshold (default 6):
//!   catches a simmering regression the fast rule's threshold forgives.
//!
//! Transitions run a hysteresis state machine: a rule **fires** when both
//! its windows exceed the threshold, and **resolves** only after both sit
//! below `resolve_factor × threshold` for `resolve_hold` consecutive
//! evaluations — an alert cannot flap across the boundary on a noisy
//! ratio. Rule state is exposed as gauges (`slo_burn_rate`,
//! `slo_alert_firing`), transition counters, and a bounded in-memory
//! event ring (flight-recorder style: newest transitions retained, cold
//! to read, queryable for exposition).
//!
//! Evaluation is allocation-free in the steady state (burn queries hit
//! the store's alloc-free scalar paths; events allocate only on the rare
//! transition), so it rides the [`Sampler`]'s zero-alloc tick hook.
//!
//! [`timeseries`]: crate::timeseries
//! [`Sampler`]: crate::timeseries::Sampler

use crate::registry::{Counter, Gauge, Registry};
use crate::timeseries::TimeStore;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Most labels our series carry; SLO series must fit in the stack buffer
/// used to borrow them without allocating.
const MAX_LABELS: usize = 4;

/// Retained alert transitions.
const EVENT_CAP: usize = 64;

/// A `(name, labels)` series reference into the time-series store.
#[derive(Debug, Clone)]
pub struct SeriesRef {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl SeriesRef {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> SeriesRef {
        assert!(labels.len() <= MAX_LABELS, "too many labels for an SLO series");
        SeriesRef {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// One alert rule: a window pair and its burn threshold.
#[derive(Debug, Clone, Copy)]
pub struct AlertRule {
    /// Confirmation window (seconds): the burst must still be happening.
    pub short_window: f64,
    /// Detection window (seconds): the burst must be big enough to matter.
    pub long_window: f64,
    /// Fire when the burn rate over *both* windows is at or above this.
    pub burn_threshold: f64,
}

/// One SLO: a bad/total counter pair, an objective, and two alert rules.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Short identifier, used as the `slo` label ("deadline", "shed").
    pub name: String,
    /// Counter of SLO-violating events.
    pub bad: SeriesRef,
    /// Counter of all events.
    pub total: SeriesRef,
    /// Target good ratio, e.g. `0.999`. The error budget is `1 − objective`.
    pub objective: f64,
    /// Acute-burst rule (default 5 s / 60 s at burn ≥ 14.4).
    pub fast: AlertRule,
    /// Simmering-regression rule (default 60 s / 600 s at burn ≥ 6).
    pub slow: AlertRule,
    /// Hysteresis: resolve only below `resolve_factor × burn_threshold`.
    pub resolve_factor: f64,
    /// Consecutive healthy evaluations required to resolve.
    pub resolve_hold: u32,
    /// Windows with fewer total events than this read as burn 0 — an idle
    /// service is healthy, not 0/0-undefined.
    pub min_events: f64,
}

impl SloSpec {
    /// A spec with the scaled Google-SRE window/threshold defaults.
    pub fn new(name: &str, bad: SeriesRef, total: SeriesRef, objective: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            bad,
            total,
            objective,
            fast: AlertRule {
                short_window: 5.0,
                long_window: 60.0,
                burn_threshold: 14.4,
            },
            slow: AlertRule {
                short_window: 60.0,
                long_window: 600.0,
                burn_threshold: 6.0,
            },
            resolve_factor: 0.8,
            resolve_hold: 3,
            min_events: 1.0,
        }
    }
}

/// One alert transition, newest-last in [`SloEngine::events`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Store timestamp of the evaluation that transitioned.
    pub t: f64,
    /// The SLO's name.
    pub slo: String,
    /// `"fast"` or `"slow"`.
    pub alert: &'static str,
    /// `true` on firing, `false` on resolve.
    pub firing: bool,
}

/// Point-in-time SLO summary (what `HealthReply` carries).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloStatus {
    /// Worst fast-rule long-window burn across SLOs.
    pub fast_burn: f64,
    /// Worst slow-rule long-window burn across SLOs.
    pub slow_burn: f64,
    /// Alert rules currently firing across SLOs.
    pub firing: u32,
}

/// Hysteresis state of one alert rule.
struct RuleState {
    firing: bool,
    healthy_streak: u32,
    /// Long-window burn at the last evaluation.
    last_burn: f64,
    firing_gauge: Gauge,
    short_gauge: Gauge,
    long_gauge: Gauge,
    fired_total: Counter,
    resolved_total: Counter,
}

struct SloState {
    spec: SloSpec,
    fast: RuleState,
    slow: RuleState,
}

/// The alert engine: owns per-rule hysteresis state, evaluates against a
/// [`TimeStore`], and exposes burn rates and alert states back into the
/// registry it was built over.
pub struct SloEngine {
    inner: Mutex<EngineInner>,
}

struct EngineInner {
    slos: Vec<SloState>,
    events: VecDeque<AlertEvent>,
}

fn window_label(seconds: f64) -> String {
    if seconds >= 60.0 && (seconds % 60.0) == 0.0 {
        format!("{}m", (seconds / 60.0) as u64)
    } else {
        format!("{}s", seconds as u64)
    }
}

fn rule_state(reg: &Registry, slo: &str, alert: &'static str, rule: &AlertRule) -> RuleState {
    let short = window_label(rule.short_window);
    let long = window_label(rule.long_window);
    RuleState {
        firing: false,
        healthy_streak: 0,
        last_burn: 0.0,
        firing_gauge: reg.gauge_with(
            "slo_alert_firing",
            &[("slo", slo), ("alert", alert)],
            "1 while the alert rule is firing, 0 otherwise",
        ),
        short_gauge: reg.gauge_with(
            "slo_burn_rate",
            &[("slo", slo), ("alert", alert), ("window", &short)],
            "error-budget burn rate over the rule's short window",
        ),
        long_gauge: reg.gauge_with(
            "slo_burn_rate",
            &[("slo", slo), ("alert", alert), ("window", &long)],
            "error-budget burn rate over the rule's long window",
        ),
        fired_total: reg.counter_with(
            "slo_alert_transitions_total",
            &[("slo", slo), ("alert", alert), ("to", "firing")],
            "resolved→firing transitions",
        ),
        resolved_total: reg.counter_with(
            "slo_alert_transitions_total",
            &[("slo", slo), ("alert", alert), ("to", "resolved")],
            "firing→resolved transitions",
        ),
    }
}

/// Borrows owned label pairs into a stack buffer — the query path stays
/// allocation-free.
fn borrow_labels<'a>(
    labels: &'a [(String, String)],
    buf: &'a mut [(&'a str, &'a str); MAX_LABELS],
) -> &'a [(&'a str, &'a str)] {
    for (slot, (k, v)) in buf.iter_mut().zip(labels) {
        *slot = (k.as_str(), v.as_str());
    }
    &buf[..labels.len()]
}

/// Burn rate of `bad/total` over `window`: bad ratio divided by the error
/// budget; 0 when the window holds fewer than `min_events` total events
/// or the store has no history yet.
fn burn_over(
    store: &TimeStore,
    bad: &SeriesRef,
    total: &SeriesRef,
    window: f64,
    budget: f64,
    min_events: f64,
) -> f64 {
    let mut buf = [("", ""); MAX_LABELS];
    let total_d = store
        .counter_delta(&total.name, borrow_labels(&total.labels, &mut buf), window)
        .unwrap_or(0.0);
    if total_d < min_events {
        return 0.0;
    }
    let mut buf = [("", ""); MAX_LABELS];
    let bad_d = store
        .counter_delta(&bad.name, borrow_labels(&bad.labels, &mut buf), window)
        .unwrap_or(0.0);
    let ratio = (bad_d / total_d).clamp(0.0, 1.0);
    if budget > 0.0 {
        ratio / budget
    } else if ratio > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

impl SloEngine {
    /// Builds the engine, registering its gauges/counters on `reg` (use
    /// the registry the store samples so alert state shows up in the same
    /// scrape).
    pub fn with_registry(reg: &Registry, specs: Vec<SloSpec>) -> SloEngine {
        let slos = specs
            .into_iter()
            .map(|spec| {
                assert!(
                    (0.0..1.0).contains(&spec.objective),
                    "objective must be in [0, 1)"
                );
                SloState {
                    fast: rule_state(reg, &spec.name, "fast", &spec.fast),
                    slow: rule_state(reg, &spec.name, "slow", &spec.slow),
                    spec,
                }
            })
            .collect();
        SloEngine {
            inner: Mutex::new(EngineInner {
                slos,
                events: VecDeque::with_capacity(EVENT_CAP),
            }),
        }
    }

    /// Builds the engine against the process-wide registry.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine::with_registry(crate::global(), specs)
    }

    /// Evaluates every rule against the store's current history at store
    /// time `t`. Allocation-free unless an alert transitions.
    pub fn evaluate(&self, store: &TimeStore, t: f64) {
        let mut inner = self.inner.lock().expect("slo lock");
        let inner = &mut *inner;
        for slo in &mut inner.slos {
            let budget = 1.0 - slo.spec.objective;
            for (rule, state) in [
                (&slo.spec.fast, &mut slo.fast),
                (&slo.spec.slow, &mut slo.slow),
            ] {
                let short = burn_over(
                    store,
                    &slo.spec.bad,
                    &slo.spec.total,
                    rule.short_window,
                    budget,
                    slo.spec.min_events,
                );
                let long = burn_over(
                    store,
                    &slo.spec.bad,
                    &slo.spec.total,
                    rule.long_window,
                    budget,
                    slo.spec.min_events,
                );
                state.last_burn = long;
                state.short_gauge.set(short);
                state.long_gauge.set(long);
                let over = short >= rule.burn_threshold && long >= rule.burn_threshold;
                let resolve_line = slo.spec.resolve_factor * rule.burn_threshold;
                let calm = short < resolve_line && long < resolve_line;
                let transition = if !state.firing && over {
                    state.firing = true;
                    state.healthy_streak = 0;
                    state.fired_total.inc();
                    Some(true)
                } else if state.firing {
                    if calm {
                        state.healthy_streak += 1;
                        if state.healthy_streak >= slo.spec.resolve_hold {
                            state.firing = false;
                            state.resolved_total.inc();
                            Some(false)
                        } else {
                            None
                        }
                    } else {
                        // Hysteresis: any not-calm evaluation restarts the
                        // resolve hold, including the in-between band
                        // `[resolve_line, threshold)` that neither fires
                        // nor calms — the anti-flap region.
                        state.healthy_streak = 0;
                        None
                    }
                } else {
                    None
                };
                state.firing_gauge.set(if state.firing { 1.0 } else { 0.0 });
                if let Some(firing) = transition {
                    if inner.events.len() == EVENT_CAP {
                        inner.events.pop_front();
                    }
                    inner.events.push_back(AlertEvent {
                        t,
                        slo: slo.spec.name.clone(),
                        alert: if std::ptr::eq(rule, &slo.spec.fast) {
                            "fast"
                        } else {
                            "slow"
                        },
                        firing,
                    });
                }
            }
        }
    }

    /// Worst-case burn summary plus the firing count.
    pub fn status(&self) -> SloStatus {
        let inner = self.inner.lock().expect("slo lock");
        let mut s = SloStatus::default();
        for slo in &inner.slos {
            s.fast_burn = s.fast_burn.max(slo.fast.last_burn);
            s.slow_burn = s.slow_burn.max(slo.slow.last_burn);
            s.firing += u32::from(slo.fast.firing) + u32::from(slo.slow.firing);
        }
        s
    }

    /// Long-window burn rates of one named SLO: `(fast rule, slow rule)`,
    /// as of the most recent evaluation. `None` for an unknown name.
    pub fn slo_burns(&self, slo: &str) -> Option<(f64, f64)> {
        let inner = self.inner.lock().expect("slo lock");
        inner
            .slos
            .iter()
            .find(|s| s.spec.name == slo)
            .map(|s| (s.fast.last_burn, s.slow.last_burn))
    }

    /// Whether a specific rule (`"fast"`/`"slow"`) of a named SLO is
    /// currently firing.
    pub fn is_firing(&self, slo: &str, alert: &str) -> bool {
        let inner = self.inner.lock().expect("slo lock");
        inner
            .slos
            .iter()
            .find(|s| s.spec.name == slo)
            .is_some_and(|s| match alert {
                "fast" => s.fast.firing,
                "slow" => s.slow.firing,
                _ => false,
            })
    }

    /// The retained transition events, oldest first.
    pub fn events(&self) -> Vec<AlertEvent> {
        let inner = self.inner.lock().expect("slo lock");
        inner.events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::TsConfig;

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    /// Build a deadline SLO with second-scale test windows.
    fn test_spec() -> SloSpec {
        let mut spec = SloSpec::new(
            "deadline",
            SeriesRef::new("t_deadline_miss_total", &[("server", "a")]),
            SeriesRef::new("t_deadline_total", &[("server", "a")]),
            0.999,
        );
        spec.fast = AlertRule {
            short_window: 5.0,
            long_window: 20.0,
            burn_threshold: 14.4,
        };
        spec.slow = AlertRule {
            short_window: 20.0,
            long_window: 60.0,
            burn_threshold: 6.0,
        };
        spec
    }

    /// The acceptance regression: a synthetic deadline-miss burst fires
    /// the fast-window alert, recovery resolves it, and the transition
    /// log shows exactly one firing→resolved cycle — no flapping across
    /// either boundary.
    #[test]
    fn burst_fires_fast_alert_and_recovery_resolves_without_flapping() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 128,
                hist_capacity: 2,
            },
        );
        let total = reg.counter_with("t_deadline_total", &[("server", "a")], "");
        let miss = reg.counter_with("t_deadline_miss_total", &[("server", "a")], "");
        let engine = SloEngine::with_registry(reg, vec![test_spec()]);

        let mut fired_at = None;
        let mut resolved_at = None;
        for t in 1..=120u64 {
            total.add(100);
            if (40..50).contains(&t) {
                miss.add(50); // 50 % misses: burn 500 ≫ 14.4
            }
            store.tick_at(t as f64);
            engine.evaluate(&store, t as f64);
            let firing = engine.is_firing("deadline", "fast");
            if firing && fired_at.is_none() {
                fired_at = Some(t);
            }
            if fired_at.is_some() && resolved_at.is_none() && !firing {
                resolved_at = Some(t);
            }
        }
        let fired_at = fired_at.expect("fast alert never fired");
        let resolved_at = resolved_at.expect("fast alert never resolved");
        assert!(
            (40..=45).contains(&fired_at),
            "fired at {fired_at}, expected within the burst"
        );
        // The long (20 s) window stays hot until the burst ages out at
        // t≈70, then resolve_hold=3 calm evaluations must pass.
        assert!(
            (52..=80).contains(&resolved_at),
            "resolved at {resolved_at}"
        );

        // No flapping: the fast rule transitioned exactly twice, in order.
        let fast_events: Vec<_> = engine
            .events()
            .into_iter()
            .filter(|e| e.alert == "fast")
            .collect();
        assert_eq!(fast_events.len(), 2, "fast rule flapped: {fast_events:?}");
        assert!(fast_events[0].firing && !fast_events[1].firing);
        assert_eq!(fast_events[0].t, fired_at as f64);
        assert_eq!(fast_events[1].t, resolved_at as f64);

        // Gauges mirror the final state — both in the registry and in the
        // store's sampled history.
        let g = reg.gauge_with("slo_alert_firing", &[("slo", "deadline"), ("alert", "fast")], "");
        assert_eq!(g.get(), 0.0);
        assert_eq!(
            store.gauge_last("slo_alert_firing", &[("slo", "deadline"), ("alert", "fast")]),
            Some(0.0),
        );
        let fired = reg.counter_with(
            "slo_alert_transitions_total",
            &[("slo", "deadline"), ("alert", "fast"), ("to", "firing")],
            "",
        );
        let resolved = reg.counter_with(
            "slo_alert_transitions_total",
            &[("slo", "deadline"), ("alert", "fast"), ("to", "resolved")],
            "",
        );
        assert_eq!((fired.get(), resolved.get()), (1, 1));
    }

    /// Burn in the anti-flap band `[resolve_line, threshold)` must keep a
    /// firing alert firing and a resolved alert resolved.
    #[test]
    fn hysteresis_band_neither_fires_nor_resolves() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 128,
                hist_capacity: 2,
            },
        );
        let total = reg.counter_with("t_deadline_total", &[("server", "a")], "");
        let miss = reg.counter_with("t_deadline_miss_total", &[("server", "a")], "");
        let mut spec = test_spec();
        // Tight windows so each tick dominates both.
        spec.fast = AlertRule {
            short_window: 1.0,
            long_window: 2.0,
            burn_threshold: 14.4,
        };
        // Park the slow rule so the event log isolates the fast rule.
        spec.slow.burn_threshold = f64::INFINITY;
        let engine = SloEngine::with_registry(reg, vec![spec]);

        // Band ratio: threshold 14.4, resolve line 11.52 (0.8×); a 1.3 %
        // miss ratio burns at 13 — inside the band.
        let mut t = 0.0;
        let mut step = |miss_n: u64, engine: &SloEngine| {
            t += 1.0;
            total.add(1000);
            miss.add(miss_n);
            store.tick_at(t);
            engine.evaluate(&store, t);
        };
        // Not firing + band burn → stays resolved.
        for _ in 0..5 {
            step(13, &engine);
        }
        assert!(!engine.is_firing("deadline", "fast"));
        // Cross the threshold → fires.
        for _ in 0..3 {
            step(30, &engine);
        }
        assert!(engine.is_firing("deadline", "fast"));
        // Back into the band → must NOT resolve, however long.
        for _ in 0..10 {
            step(13, &engine);
        }
        assert!(engine.is_firing("deadline", "fast"));
        // Calm → resolves after the hold.
        for _ in 0..5 {
            step(0, &engine);
        }
        assert!(!engine.is_firing("deadline", "fast"));
        assert_eq!(engine.events().len(), 2);
    }

    #[test]
    fn idle_service_is_healthy_and_status_aggregates() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(reg, TsConfig::default());
        let _total = reg.counter_with("t_deadline_total", &[("server", "a")], "");
        let _miss = reg.counter_with("t_deadline_miss_total", &[("server", "a")], "");
        let engine = SloEngine::with_registry(reg, vec![test_spec()]);
        store.tick_at(1.0);
        store.tick_at(2.0);
        engine.evaluate(&store, 2.0);
        let s = engine.status();
        assert_eq!(s, SloStatus::default());
        assert!(!engine.is_firing("deadline", "fast"));
        assert!(!engine.is_firing("nope", "fast"));
        assert!(engine.events().is_empty());
    }
}
