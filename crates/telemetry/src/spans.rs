//! Feature-gated span tracer.
//!
//! Each `span!("name")` call site owns one static [`SpanSite`]. On first
//! entry the site claims a slot in a fixed global table of span cells
//! (registration takes a mutex once per site); every later entry is a
//! thread-local stack push and every exit three relaxed `fetch_add`s —
//! call count, total nanoseconds, and *self* nanoseconds (total minus time
//! spent in child spans, tracked via the per-thread stack).
//!
//! With the `telemetry-spans` feature **off** (the default), every type in
//! this module is a zero-sized shell, `enter` is an empty
//! `#[inline(always)]` function and the guard has no `Drop` impl: the
//! compiler erases the whole site. `tests/engine_determinism.rs` plus the
//! `determinism_probe` diff in `scripts/perfcheck.sh` pin that both builds
//! produce bitwise-identical inference outputs.

/// Aggregated statistics for one span site.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Site name as written at the `span!` call.
    pub name: &'static str,
    /// Completed enter/exit pairs.
    pub calls: u64,
    /// Total wall nanoseconds across calls (children included).
    pub total_ns: u64,
    /// Nanoseconds not attributed to child spans.
    pub self_ns: u64,
}

#[cfg(feature = "telemetry-spans")]
mod imp {
    use super::SpanStats;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Maximum distinct span sites (one static per `span!` occurrence).
    pub const MAX_SITES: usize = 256;
    /// Maximum live nesting depth per thread; deeper spans are dropped.
    const MAX_DEPTH: usize = 64;
    /// `SpanSite::id` sentinel for "table full, never record".
    const DEAD: u32 = u32::MAX;

    struct SpanCell {
        name: &'static str,
        calls: AtomicU64,
        total_ns: AtomicU64,
        self_ns: AtomicU64,
    }

    static CELLS: [OnceLock<SpanCell>; MAX_SITES] = [const { OnceLock::new() }; MAX_SITES];
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    static REGISTER: Mutex<()> = Mutex::new(());

    /// One `span!` call site: a name plus its lazily claimed table slot.
    pub struct SpanSite {
        name: &'static str,
        /// 0 = unclaimed, `i + 1` = slot `i`, `DEAD` = table overflow.
        id: AtomicU32,
    }

    impl SpanSite {
        /// Const constructor used by the `span!` macro expansion.
        pub const fn new(name: &'static str) -> SpanSite {
            SpanSite {
                name,
                id: AtomicU32::new(0),
            }
        }

        fn resolve(&self) -> u32 {
            let id = self.id.load(Ordering::Acquire);
            if id != 0 {
                return id;
            }
            let _g = REGISTER.lock().expect("span registration lock");
            // Re-check: another thread may have registered while we waited.
            let id = self.id.load(Ordering::Acquire);
            if id != 0 {
                return id;
            }
            let idx = NEXT.load(Ordering::Relaxed);
            if idx >= MAX_SITES {
                self.id.store(DEAD, Ordering::Release);
                return DEAD;
            }
            CELLS[idx].get_or_init(|| SpanCell {
                name: self.name,
                calls: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                self_ns: AtomicU64::new(0),
            });
            NEXT.store(idx + 1, Ordering::Release);
            let id = (idx + 1) as u32;
            self.id.store(id, Ordering::Release);
            id
        }
    }

    #[derive(Clone, Copy)]
    struct Frame {
        slot: u32,
        start: Instant,
        child_ns: u64,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII guard: records on drop. Must be dropped in LIFO order per
    /// thread — scope-bound `let _g = span!(…)` bindings guarantee it.
    #[must_use = "binding the guard to a scope is what times the span"]
    pub struct SpanGuard {
        active: bool,
    }

    impl SpanGuard {
        /// Enters `site`. No-op when recording is disabled, the site table
        /// overflowed, or nesting exceeds `MAX_DEPTH`.
        #[inline]
        pub fn enter(site: &SpanSite) -> SpanGuard {
            if !crate::enabled() {
                return SpanGuard { active: false };
            }
            let id = site.resolve();
            if id == DEAD {
                return SpanGuard { active: false };
            }
            let pushed = STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.capacity() == 0 {
                    // One-time reserve keeps the steady state allocation-free.
                    s.reserve(MAX_DEPTH);
                }
                if s.len() >= MAX_DEPTH {
                    return false;
                }
                s.push(Frame {
                    slot: id - 1,
                    start: Instant::now(),
                    child_ns: 0,
                });
                true
            });
            SpanGuard { active: pushed }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                let f = s.pop().expect("span stack underflow (non-LIFO guard drop)");
                let total = f.start.elapsed().as_nanos() as u64;
                let cell = CELLS[f.slot as usize].get().expect("registered span cell");
                cell.calls.fetch_add(1, Ordering::Relaxed);
                cell.total_ns.fetch_add(total, Ordering::Relaxed);
                cell.self_ns
                    .fetch_add(total.saturating_sub(f.child_ns), Ordering::Relaxed);
                if let Some(parent) = s.last_mut() {
                    parent.child_ns += total;
                }
            });
        }
    }

    /// Snapshot of every registered span site's aggregates.
    pub fn snapshot() -> Vec<SpanStats> {
        let n = NEXT.load(Ordering::Acquire).min(MAX_SITES);
        (0..n)
            .filter_map(|i| CELLS[i].get())
            .map(|c| SpanStats {
                name: c.name,
                calls: c.calls.load(Ordering::Relaxed),
                total_ns: c.total_ns.load(Ordering::Relaxed),
                self_ns: c.self_ns.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(not(feature = "telemetry-spans"))]
mod imp {
    use super::SpanStats;

    /// Zero-sized stand-in: the feature is off, sites cost nothing.
    pub struct SpanSite;

    impl SpanSite {
        /// Const constructor used by the `span!` macro expansion.
        #[inline(always)]
        pub const fn new(_name: &'static str) -> SpanSite {
            SpanSite
        }
    }

    /// Zero-sized guard with no `Drop`: the optimizer erases the site.
    #[must_use = "binding the guard to a scope is what times the span"]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op.
        #[inline(always)]
        pub fn enter(_site: &SpanSite) -> SpanGuard {
            SpanGuard
        }
    }

    /// Always empty without the feature.
    pub fn snapshot() -> Vec<SpanStats> {
        Vec::new()
    }
}

pub use imp::{snapshot, SpanGuard, SpanSite};

#[cfg(all(test, feature = "telemetry-spans"))]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_attribute_self_time_to_the_right_site() {
        {
            let _outer = crate::span!("spans_test.outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = crate::span!("spans_test.inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let snap = snapshot();
        let outer = snap
            .iter()
            .find(|s| s.name == "spans_test.outer")
            .expect("outer registered");
        let inner = snap
            .iter()
            .find(|s| s.name == "spans_test.inner")
            .expect("inner registered");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(outer.total_ns >= inner.total_ns);
        // Outer self time excludes the inner sleep.
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + outer.total_ns / 4,
            "outer self {} vs total {} inner {}",
            outer.self_ns,
            outer.total_ns,
            inner.total_ns
        );
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn repeated_entries_accumulate_calls() {
        for _ in 0..10 {
            let _g = crate::span!("spans_test.repeat");
        }
        let snap = snapshot();
        let s = snap
            .iter()
            .find(|s| s.name == "spans_test.repeat")
            .expect("registered");
        assert!(s.calls >= 10);
        assert!(s.total_ns >= s.self_ns || s.total_ns == 0);
    }
}
