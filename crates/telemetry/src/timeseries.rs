//! Fixed-capacity in-process time-series store sampled from the registry.
//!
//! The registry (PR 3) answers "what has happened since process start";
//! this module answers "what is happening *now*". A [`TimeStore`] keeps a
//! ring-buffer history per registered series and a background [`Sampler`]
//! ticks it at a fixed interval:
//!
//! * **counters** — the raw cumulative value is recorded per tick;
//!   windowed rates fall out of snapshot differencing
//!   (`(v₂ − v₁)/(t₂ − t₁)`) at query time, so one history serves every
//!   window width;
//! * **gauges** — last value per tick;
//! * **histograms** — the full bucket-count snapshot is recorded per tick
//!   ([`Histogram::snapshot_counts_into`]); differencing two snapshots
//!   gives the bucket distribution of exactly the samples recorded
//!   between them, from which [`percentile_from_counts`] yields *true
//!   per-window* p50/p99 rather than lifetime-cumulative ones.
//!
//! Capacity is fixed at construction: every ring is preallocated when its
//! series is first discovered, discovery is incremental (the registry's
//! per-kind vectors only append, so a length watermark sees each series
//! exactly once), and a warm tick — no new series since the last one —
//! performs **zero** heap allocations (`tests/zero_alloc_timeseries.rs`).
//! Memory is bounded by `series × capacity` regardless of uptime.
//!
//! Window semantics, shared by every query and mirrored by the
//! brute-force oracle in `tests/timeseries_props.rs`: the window anchor
//! is the most recent sample at or before `t_end − window`, clamped to
//! the oldest retained sample when history is shorter than the window
//! (partial windows degrade gracefully; rates always divide by the
//! *actual* elapsed span, never the nominal window).

use crate::histogram::{percentile_from_counts, Histogram, NBUCKETS};
use crate::registry::{global, Counter, Gauge, Registry};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Ring capacities for a [`TimeStore`].
#[derive(Debug, Clone, Copy)]
pub struct TsConfig {
    /// Points retained per counter/gauge series. The covered wall-time is
    /// `capacity × sampling interval` — the default (640 at a 1 s tick)
    /// covers the 10-minute slow SLO window with slack.
    pub capacity: usize,
    /// Bucket snapshots retained per histogram. Each snapshot is
    /// `NBUCKETS` u64s (~6.4 KiB), so this is the memory knob: the
    /// default (16) costs ~103 KiB per histogram and covers a 16 s
    /// percentile window at a 1 s tick.
    pub hist_capacity: usize,
}

impl Default for TsConfig {
    fn default() -> TsConfig {
        TsConfig {
            capacity: 640,
            hist_capacity: 16,
        }
    }
}

/// Scalar ring: parallel `t`/`v` arrays, oldest overwritten first.
struct Ring {
    t: Box<[f64]>,
    v: Box<[f64]>,
    /// Next write slot.
    head: usize,
    len: usize,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        assert!(cap >= 2, "ring needs at least two points for a window");
        Ring {
            t: vec![0.0; cap].into_boxed_slice(),
            v: vec![0.0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, t: f64, v: f64) {
        self.t[self.head] = t;
        self.v[self.head] = v;
        self.head = (self.head + 1) % self.t.len();
        self.len = (self.len + 1).min(self.t.len());
    }

    /// `(t, v)` of the `i`-th retained point, oldest first (`i < len`).
    fn at(&self, i: usize) -> (f64, f64) {
        debug_assert!(i < self.len);
        let cap = self.t.len();
        let idx = (self.head + cap - self.len + i) % cap;
        (self.t[idx], self.v[idx])
    }

    /// Index (oldest-first) of the window anchor for `cutoff = t_end −
    /// window`: the most recent point with `t ≤ cutoff`, clamped to the
    /// oldest point when the whole history is newer.
    fn anchor(&self, cutoff: f64) -> Option<usize> {
        if self.len < 2 {
            return None;
        }
        let mut a = 0;
        for i in 0..self.len - 1 {
            if self.at(i).0 <= cutoff {
                a = i;
            } else {
                break;
            }
        }
        Some(a)
    }
}

struct CounterTrack {
    h: Counter,
    ring: Ring,
}

struct GaugeTrack {
    h: Gauge,
    ring: Ring,
}

/// Histogram ring: timestamps plus a flat `hist_capacity × NBUCKETS`
/// snapshot arena (slot `i` is `snaps[i·NBUCKETS ..][.. NBUCKETS]`).
struct HistTrack {
    h: Histogram,
    t: Box<[f64]>,
    snaps: Box<[u64]>,
    head: usize,
    len: usize,
}

impl HistTrack {
    fn new(h: Histogram, cap: usize) -> HistTrack {
        assert!(cap >= 2, "histogram ring needs at least two snapshots");
        HistTrack {
            h,
            t: vec![0.0; cap].into_boxed_slice(),
            snaps: vec![0u64; cap * NBUCKETS].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    fn cap(&self) -> usize {
        self.t.len()
    }

    fn push(&mut self, t: f64) {
        let slot = self.head;
        self.t[slot] = t;
        self.h
            .snapshot_counts_into(&mut self.snaps[slot * NBUCKETS..][..NBUCKETS]);
        self.head = (self.head + 1) % self.cap();
        self.len = (self.len + 1).min(self.cap());
    }

    fn time_at(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        self.t[self.slot_of(i)]
    }

    fn slot_of(&self, i: usize) -> usize {
        let cap = self.cap();
        (self.head + cap - self.len + i) % cap
    }

    fn snap_at(&self, i: usize) -> &[u64] {
        &self.snaps[self.slot_of(i) * NBUCKETS..][..NBUCKETS]
    }

    fn anchor(&self, cutoff: f64) -> Option<usize> {
        if self.len < 2 {
            return None;
        }
        let mut a = 0;
        for i in 0..self.len - 1 {
            if self.time_at(i) <= cutoff {
                a = i;
            } else {
                break;
            }
        }
        Some(a)
    }
}

struct StoreInner {
    counters_seen: usize,
    gauges_seen: usize,
    histograms_seen: usize,
    counters: Vec<CounterTrack>,
    gauges: Vec<GaugeTrack>,
    hists: Vec<HistTrack>,
    last_t: Option<f64>,
}

/// Windowed stats of one histogram over `(t_anchor, t_end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistWindow {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Actual elapsed span of the window (≤ the requested width when
    /// history is short).
    pub elapsed: f64,
    /// Windowed median, bucket resolution. 0 when `count == 0`.
    pub p50: f64,
    /// Windowed 99th percentile, bucket resolution. 0 when `count == 0`.
    pub p99: f64,
}

/// One series' retained history, for exposition/plotting
/// (see `expose::render_history_json`).
pub enum SeriesHistory {
    /// `(t, cumulative value, rate per second since the previous tick)`.
    Counter {
        name: String,
        labels: Vec<(String, String)>,
        points: Vec<(f64, f64, f64)>,
    },
    /// `(t, value)`.
    Gauge {
        name: String,
        labels: Vec<(String, String)>,
        points: Vec<(f64, f64)>,
    },
    /// Per-tick deltas: `(t, samples since previous tick, p50, p99)`.
    Histogram {
        name: String,
        labels: Vec<(String, String)>,
        points: Vec<(f64, u64, f64, f64)>,
    },
}

/// The in-process time-series store. Construction is cheap; rings are
/// allocated lazily as series are discovered on each tick.
pub struct TimeStore {
    cfg: TsConfig,
    registry: &'static Registry,
    started: Instant,
    inner: Mutex<StoreInner>,
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

impl TimeStore {
    /// A store over the process-wide registry.
    pub fn new(cfg: TsConfig) -> TimeStore {
        TimeStore::with_registry(global(), cfg)
    }

    /// A store over an explicit registry (tests use
    /// `Box::leak(Box::new(Registry::new()))` for isolation).
    pub fn with_registry(registry: &'static Registry, cfg: TsConfig) -> TimeStore {
        TimeStore {
            cfg,
            registry,
            started: Instant::now(),
            inner: Mutex::new(StoreInner {
                counters_seen: 0,
                gauges_seen: 0,
                histograms_seen: 0,
                counters: Vec::new(),
                gauges: Vec::new(),
                hists: Vec::new(),
                last_t: None,
            }),
        }
    }

    /// Samples every series at the wall clock (seconds since the store
    /// was created).
    pub fn tick(&self) {
        self.tick_at(self.started.elapsed().as_secs_f64());
    }

    /// Samples every series at an explicit timestamp — the deterministic
    /// entry point tests and the [`Sampler`] thread share. Non-advancing
    /// timestamps (`t ≤` the previous tick) are ignored so rate
    /// denominators stay positive.
    pub fn tick_at(&self, t: f64) {
        let mut inner = self.inner.lock().expect("timestore lock");
        if inner.last_t.is_some_and(|last| t <= last) {
            return;
        }
        // Incremental discovery: cold and allocating only when series were
        // registered since the previous tick; a no-op (three empty clones)
        // on the warm path.
        let (nc, ng, nh) = self.registry.handles_since(
            inner.counters_seen,
            inner.gauges_seen,
            inner.histograms_seen,
        );
        inner.counters_seen += nc.len();
        inner.gauges_seen += ng.len();
        inner.histograms_seen += nh.len();
        let cap = self.cfg.capacity;
        let hcap = self.cfg.hist_capacity;
        for h in nc {
            inner.counters.push(CounterTrack {
                h,
                ring: Ring::new(cap),
            });
        }
        for h in ng {
            inner.gauges.push(GaugeTrack {
                h,
                ring: Ring::new(cap),
            });
        }
        for h in nh {
            inner.hists.push(HistTrack::new(h, hcap));
        }
        // The warm steady state: in-place ring writes, zero allocations.
        for c in &mut inner.counters {
            let v = c.h.get() as f64;
            c.ring.push(t, v);
        }
        for g in &mut inner.gauges {
            let v = g.h.get();
            g.ring.push(t, v);
        }
        for ht in &mut inner.hists {
            ht.push(t);
        }
        inner.last_t = Some(t);
    }

    /// Timestamp of the most recent tick.
    pub fn last_tick(&self) -> Option<f64> {
        self.inner.lock().expect("timestore lock").last_t
    }

    /// Windowed counter increase: `v(t_end) − v(anchor)`. `None` until the
    /// series has two samples. Allocation-free.
    pub fn counter_delta(&self, name: &str, labels: &[(&str, &str)], window: f64) -> Option<f64> {
        self.counter_window(name, labels, window)
            .map(|(dv, _dt)| dv)
    }

    /// Windowed counter rate per second: increase over the window divided
    /// by the *actual* elapsed span. `None` until the series has two
    /// samples. Allocation-free.
    pub fn counter_rate(&self, name: &str, labels: &[(&str, &str)], window: f64) -> Option<f64> {
        self.counter_window(name, labels, window)
            .map(|(dv, dt)| if dt > 0.0 { dv / dt } else { 0.0 })
    }

    fn counter_window(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: f64,
    ) -> Option<(f64, f64)> {
        let inner = self.inner.lock().expect("timestore lock");
        let c = inner
            .counters
            .iter()
            .find(|c| c.h.name() == name && labels_match(c.h.labels(), labels))?;
        let (t_end, v_end) = c.ring.at(c.ring.len.checked_sub(1)?);
        let a = c.ring.anchor(t_end - window)?;
        let (t_a, v_a) = c.ring.at(a);
        Some((v_end - v_a, t_end - t_a))
    }

    /// Most recent sampled gauge value. Allocation-free.
    pub fn gauge_last(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().expect("timestore lock");
        let g = inner
            .gauges
            .iter()
            .find(|g| g.h.name() == name && labels_match(g.h.labels(), labels))?;
        let last = g.ring.len.checked_sub(1)?;
        Some(g.ring.at(last).1)
    }

    /// Windowed-delta histogram stats: the bucket distribution of exactly
    /// the samples recorded in the window, percentiled at bucket
    /// resolution. `None` until two snapshots exist. Heap-allocation-free
    /// (the delta scratch lives on the stack).
    pub fn hist_window(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        window: f64,
    ) -> Option<HistWindow> {
        let inner = self.inner.lock().expect("timestore lock");
        let ht = inner
            .hists
            .iter()
            .find(|h| h.h.name() == name && labels_match(h.h.labels(), labels))?;
        let newest = ht.len.checked_sub(1)?;
        let t_end = ht.time_at(newest);
        let a = ht.anchor(t_end - window)?;
        let mut delta = [0u64; NBUCKETS];
        let end = ht.snap_at(newest);
        let start = ht.snap_at(a);
        let mut count = 0u64;
        for i in 0..NBUCKETS {
            // Bucket counts are monotone; saturate anyway so a torn read
            // can never wrap into an absurd count.
            delta[i] = end[i].saturating_sub(start[i]);
            count += delta[i];
        }
        Some(HistWindow {
            count,
            elapsed: t_end - ht.time_at(a),
            p50: percentile_from_counts(&delta, 0.50),
            p99: percentile_from_counts(&delta, 0.99),
        })
    }

    /// Full retained history of every series — the (allocating, cold)
    /// exposition path behind `expose::render_history_json`.
    pub fn series_histories(&self) -> Vec<SeriesHistory> {
        let inner = self.inner.lock().expect("timestore lock");
        let mut out = Vec::new();
        for c in &inner.counters {
            let mut points = Vec::with_capacity(c.ring.len);
            for i in 0..c.ring.len {
                let (t, v) = c.ring.at(i);
                let rate = if i == 0 {
                    0.0
                } else {
                    let (tp, vp) = c.ring.at(i - 1);
                    if t > tp {
                        (v - vp) / (t - tp)
                    } else {
                        0.0
                    }
                };
                points.push((t, v, rate));
            }
            out.push(SeriesHistory::Counter {
                name: c.h.name().to_string(),
                labels: c.h.labels().to_vec(),
                points,
            });
        }
        for g in &inner.gauges {
            let mut points = Vec::with_capacity(g.ring.len);
            for i in 0..g.ring.len {
                points.push(g.ring.at(i));
            }
            out.push(SeriesHistory::Gauge {
                name: g.h.name().to_string(),
                labels: g.h.labels().to_vec(),
                points,
            });
        }
        let mut delta = [0u64; NBUCKETS];
        for ht in &inner.hists {
            let mut points = Vec::with_capacity(ht.len);
            for i in 1..ht.len {
                let end = ht.snap_at(i);
                let start = ht.snap_at(i - 1);
                let mut count = 0u64;
                for b in 0..NBUCKETS {
                    delta[b] = end[b].saturating_sub(start[b]);
                    count += delta[b];
                }
                points.push((
                    ht.time_at(i),
                    count,
                    percentile_from_counts(&delta, 0.50),
                    percentile_from_counts(&delta, 0.99),
                ));
            }
            out.push(SeriesHistory::Histogram {
                name: ht.h.name().to_string(),
                labels: ht.h.labels().to_vec(),
                points,
            });
        }
        out
    }
}

/// A self-contained windowed-p99 tracker over one histogram handle, for
/// callers that want snapshot differencing at their own cadence rather
/// than through a [`TimeStore`] — the router's replica health score uses
/// one per replica. `refresh()` closes the current window: it diffs the
/// bucket counts against the previous refresh and reports the p50/p99 of
/// exactly the samples recorded in between. Allocation-free after
/// construction.
pub struct WindowedHistogram {
    h: Histogram,
    prev: Box<[u64]>,
    curr: Box<[u64]>,
    delta: Box<[u64]>,
    last_count: u64,
    last_p99: f64,
}

impl WindowedHistogram {
    pub fn new(h: Histogram) -> WindowedHistogram {
        let mut prev = vec![0u64; NBUCKETS].into_boxed_slice();
        // Start the first window at "now", not process start: samples
        // recorded before this tracker existed are not recent evidence.
        h.snapshot_counts_into(&mut prev);
        WindowedHistogram {
            h,
            prev,
            curr: vec![0u64; NBUCKETS].into_boxed_slice(),
            delta: vec![0u64; NBUCKETS].into_boxed_slice(),
            last_count: 0,
            last_p99: 0.0,
        }
    }

    /// Closes the window opened by the previous `refresh` (or by
    /// construction): returns `(samples in window, windowed p99)`. An
    /// empty window reports `(0, 0.0)` — no recent evidence reads as
    /// healthy, so a replica that was slow long ago recovers as soon as
    /// its stale samples age out of the window.
    pub fn refresh(&mut self) -> (u64, f64) {
        self.h.snapshot_counts_into(&mut self.curr);
        let mut count = 0u64;
        for i in 0..NBUCKETS {
            self.delta[i] = self.curr[i].saturating_sub(self.prev[i]);
            count += self.delta[i];
        }
        self.last_count = count;
        self.last_p99 = percentile_from_counts(&self.delta, 0.99);
        std::mem::swap(&mut self.prev, &mut self.curr);
        (self.last_count, self.last_p99)
    }

    /// The p99 reported by the most recent `refresh`.
    pub fn last_p99(&self) -> f64 {
        self.last_p99
    }
}

/// Background thread driving [`TimeStore::tick`] at a fixed interval,
/// with an optional per-tick hook (the server hangs its SLO evaluation
/// off it). Stops and joins on drop.
pub struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `store` every `interval`.
    pub fn start(store: Arc<TimeStore>, interval: Duration) -> Sampler {
        Sampler::start_with_hook(store, interval, |_, _| {})
    }

    /// Starts sampling with `hook(store, t)` invoked after every tick.
    pub fn start_with_hook(
        store: Arc<TimeStore>,
        interval: Duration,
        mut hook: impl FnMut(&TimeStore, f64) + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_t = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ms-ts-sampler".into())
            .spawn(move || {
                let (lock, cv) = &*stop_t;
                loop {
                    store.tick();
                    if let Some(t) = store.last_tick() {
                        hook(&store, t);
                    }
                    let guard = lock.lock().expect("sampler stop lock");
                    let (guard, _) = cv
                        .wait_timeout(guard, interval)
                        .expect("sampler stop wait");
                    if *guard {
                        return;
                    }
                }
            })
            .expect("spawn sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("sampler stop lock") = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn counter_windowed_rates_from_snapshot_differencing() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 8,
                hist_capacity: 2,
            },
        );
        let c = reg.counter("ts_reqs_total", "");
        store.tick_at(0.0);
        c.add(100);
        store.tick_at(1.0);
        c.add(300);
        store.tick_at(2.0);

        // Last 1 s: +300. Last 2 s: +400 over 2 s.
        assert_eq!(store.counter_rate("ts_reqs_total", &[], 1.0), Some(300.0));
        assert_eq!(store.counter_rate("ts_reqs_total", &[], 2.0), Some(200.0));
        assert_eq!(store.counter_delta("ts_reqs_total", &[], 2.0), Some(400.0));
        // Wider-than-history windows clamp to the oldest sample.
        assert_eq!(store.counter_rate("ts_reqs_total", &[], 50.0), Some(200.0));
        assert_eq!(store.counter_rate("nope", &[], 1.0), None);
    }

    #[test]
    fn ring_wraps_and_drops_oldest() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 4,
                hist_capacity: 2,
            },
        );
        let c = reg.counter("ts_wrap_total", "");
        for i in 0..10 {
            c.add(10);
            store.tick_at(i as f64);
        }
        // Only ticks t=6..9 retained: a 100 s window clamps to t=6.
        assert_eq!(store.counter_delta("ts_wrap_total", &[], 100.0), Some(30.0));
    }

    #[test]
    fn gauge_history_keeps_last() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(reg, TsConfig::default());
        let g = reg.gauge_with("ts_depth", &[("engine", "0")], "");
        g.set(3.0);
        store.tick_at(1.0);
        g.set(7.5);
        store.tick_at(2.0);
        assert_eq!(store.gauge_last("ts_depth", &[("engine", "0")]), Some(7.5));
        assert_eq!(store.gauge_last("ts_depth", &[("engine", "1")]), None);
    }

    #[test]
    fn hist_window_sees_only_recent_samples() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 8,
                hist_capacity: 8,
            },
        );
        let h = reg.histogram("ts_service_seconds", "");
        store.tick_at(0.0);
        for _ in 0..100 {
            h.record(1.0); // slow era
        }
        store.tick_at(1.0);
        for _ in 0..50 {
            h.record(1e-3); // fast era
        }
        store.tick_at(2.0);

        let w = store.hist_window("ts_service_seconds", &[], 1.0).unwrap();
        assert_eq!(w.count, 50);
        assert!(w.p99 < 2e-3, "windowed p99 {}", w.p99);
        // Lifetime view still dominated by the slow era.
        assert!(h.percentile(0.99) > 0.9);
        // The wide window includes both eras.
        let wide = store.hist_window("ts_service_seconds", &[], 10.0).unwrap();
        assert_eq!(wide.count, 150);
        assert!(wide.p99 > 0.9);
    }

    #[test]
    fn non_advancing_ticks_are_ignored() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(reg, TsConfig::default());
        let c = reg.counter("ts_mono_total", "");
        store.tick_at(5.0);
        c.inc();
        store.tick_at(5.0); // ignored
        store.tick_at(4.0); // ignored
        assert_eq!(store.last_tick(), Some(5.0));
        store.tick_at(6.0);
        assert_eq!(store.counter_delta("ts_mono_total", &[], 1.0), Some(1.0));
    }

    #[test]
    fn windowed_histogram_recovers_after_load_shift() {
        crate::set_enabled(true);
        let h = Histogram::detached("wh");
        for _ in 0..100 {
            h.record(2.0);
        }
        let mut w = WindowedHistogram::new(h.clone());
        // Pre-construction samples are not recent evidence.
        assert_eq!(w.refresh(), (0, 0.0));
        for _ in 0..10 {
            h.record(2.0);
        }
        let (n, p99) = w.refresh();
        assert_eq!(n, 10);
        assert!(p99 > 1.9);
        // Load shifts away: the very next window is clean.
        let (n, p99) = w.refresh();
        assert_eq!(n, 0);
        assert_eq!(p99, 0.0);
        assert_eq!(w.last_p99(), 0.0);
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = Arc::new(TimeStore::with_registry(reg, TsConfig::default()));
        let c = reg.counter("ts_sampler_total", "");
        c.add(5);
        let ticked = Arc::new(Mutex::new(0u32));
        let ticked_h = Arc::clone(&ticked);
        let s = Sampler::start_with_hook(
            Arc::clone(&store),
            Duration::from_millis(5),
            move |_, _| {
                *ticked_h.lock().unwrap() += 1;
            },
        );
        let t0 = Instant::now();
        while *ticked.lock().unwrap() < 3 {
            assert!(t0.elapsed() < Duration::from_secs(5), "sampler stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(s); // joins
        assert!(store.last_tick().is_some());
        assert!(store.gauge_last("no_such", &[]).is_none());
    }

    #[test]
    fn series_histories_cover_all_kinds() {
        crate::set_enabled(true);
        let reg = leaked_registry();
        let store = TimeStore::with_registry(
            reg,
            TsConfig {
                capacity: 8,
                hist_capacity: 4,
            },
        );
        let c = reg.counter("tsh_total", "");
        let g = reg.gauge("tsh_depth", "");
        let h = reg.histogram("tsh_seconds", "");
        store.tick_at(0.0);
        c.add(10);
        g.set(2.0);
        h.record(0.5);
        store.tick_at(1.0);
        let hist = store.series_histories();
        assert_eq!(hist.len(), 3);
        for s in hist {
            match s {
                SeriesHistory::Counter { name, points, .. } => {
                    assert_eq!(name, "tsh_total");
                    assert_eq!(points.len(), 2);
                    assert_eq!(points[1], (1.0, 10.0, 10.0));
                }
                SeriesHistory::Gauge { name, points, .. } => {
                    assert_eq!(name, "tsh_depth");
                    assert_eq!(points[1], (1.0, 2.0));
                }
                SeriesHistory::Histogram { name, points, .. } => {
                    assert_eq!(name, "tsh_seconds");
                    assert_eq!(points.len(), 1);
                    let (t, n, _p50, p99) = points[0];
                    assert_eq!((t, n), (1.0, 1));
                    assert!(p99 >= 0.5 && p99 < 0.6);
                }
            }
        }
    }
}
