//! Property test: histogram percentiles vs the exact sorted-vector answer.
//!
//! For any batch of positive in-range samples and any quantile, the
//! log-bucketed histogram's nearest-rank percentile must come back within
//! one bucket width of the exact value — this is the accuracy contract the
//! serving engine's `p50_service`/`p99_service` façade (and satellite 2 of
//! the telemetry PR) relies on. The exact rank-`round((n-1)·q)` sample lies
//! inside the bucket whose upper bound the histogram reports, so the error
//! is bounded by that bucket's width.

use ms_telemetry::histogram::{bucket_bounds, bucket_index, Histogram};
use proptest::prelude::*;

/// Exact nearest-rank percentile of `samples` (must be non-empty).
fn exact_percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentile_within_one_bucket_width(
        samples in proptest::collection::vec(1e-8f64..1e5, 1..200),
        q in 0.0f64..1.0000001,
    ) {
        let h = Histogram::detached("prop");
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);

        let exact = exact_percentile(&samples, q);
        let approx = h.percentile(q);

        // The reported value is the upper bound of the bucket holding the
        // exact rank sample: at least the exact value, and above it by no
        // more than that bucket's width.
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        let width = hi - lo;
        prop_assert!(
            approx >= exact && approx - exact <= width,
            "approx {} exact {} bucket [{}, {}) n {} q {}",
            approx, exact, lo, hi, samples.len(), q
        );
    }

    #[test]
    fn p50_and_p99_are_ordered(
        samples in proptest::collection::vec(1e-8f64..1e5, 1..100),
    ) {
        let h = Histogram::detached("prop_order");
        for &s in &samples {
            h.record(s);
        }
        prop_assert!(h.percentile(0.99) >= h.percentile(0.50));
    }
}
