//! Property tests for the in-process time-series store: windowed counter
//! rates and histogram-delta percentiles against brute-force recomputes
//! that mirror the documented anchor rule — anchor = most recent retained
//! sample with `t ≤ t_end − window`, clamped to the oldest retained
//! sample; rates divide by the *actual* elapsed span, never the nominal
//! window.
//!
//! Small ring capacities are used deliberately so every case exercises
//! wraparound (eviction of the oldest points) as well as the short-history
//! clamp.

use ms_telemetry::{Registry, TimeStore, TsConfig};
use proptest::prelude::*;

/// splitmix64 — expands one seed into a deterministic tick/sample
/// schedule (the vendored proptest has no strategy combinators).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn leaked_registry() -> &'static Registry {
    Box::leak(Box::new(Registry::new()))
}

const CAPACITY: usize = 8;
const HIST_CAPACITY: usize = 4;

fn store(reg: &'static Registry) -> TimeStore {
    TimeStore::with_registry(
        reg,
        TsConfig {
            capacity: CAPACITY,
            hist_capacity: HIST_CAPACITY,
        },
    )
}

/// The documented anchor rule over an explicit retained-points vector:
/// index of the most recent point (excluding the newest) with
/// `t ≤ cutoff`, defaulting to the oldest.
fn anchor_index(times: &[f64], cutoff: f64) -> usize {
    let mut a = 0;
    for (i, &t) in times[..times.len() - 1].iter().enumerate() {
        if t <= cutoff {
            a = i;
        } else {
            break;
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Windowed counter delta and rate equal the brute-force recompute
    /// over exactly the retained ring contents, for any tick schedule,
    /// any increments, and any window — including windows wider than the
    /// retained history and rings that have wrapped.
    #[test]
    fn counter_windows_match_brute_force(
        seed in any::<u64>(),
        ticks in 2usize..20,
        window in 0.0f64..30.0,
    ) {
        let mut m = Mix(seed);
        let reg = leaked_registry();
        let c = reg.counter_with("tsp_events_total", &[("case", "a")], "prop counter");
        let ts = store(reg);

        // Drive irregular ticks with bursts in between; mirror what the
        // ring retains as (t, cumulative) pairs.
        let mut t = 0.0;
        let mut retained: Vec<(f64, f64)> = Vec::new();
        for _ in 0..ticks {
            let burst = m.next() % 50;
            c.add(burst);
            t += 0.1 + 4.9 * m.unit();
            ts.tick_at(t);
            retained.push((t, c.get() as f64));
            if retained.len() > CAPACITY {
                retained.remove(0);
            }
        }

        let times: Vec<f64> = retained.iter().map(|&(t, _)| t).collect();
        let (t_end, v_end) = *retained.last().unwrap();
        let a = anchor_index(&times, t_end - window);
        let (t_a, v_a) = retained[a];
        let want_delta = v_end - v_a;
        let want_rate = if t_end > t_a { want_delta / (t_end - t_a) } else { 0.0 };

        let got_delta = ts.counter_delta("tsp_events_total", &[("case", "a")], window);
        let got_rate = ts.counter_rate("tsp_events_total", &[("case", "a")], window);
        prop_assert_eq!(got_delta, Some(want_delta));
        prop_assert_eq!(got_rate, Some(want_rate));
    }

    /// Windowed-delta histogram stats equal a brute-force recompute: a
    /// fresh histogram fed only the samples recorded inside the window
    /// (same bucketing) must report identical count/p50/p99.
    #[test]
    fn hist_windows_match_brute_force(
        seed in any::<u64>(),
        ticks in 2usize..10,
        window in 0.0f64..30.0,
    ) {
        let mut m = Mix(seed);
        let reg = leaked_registry();
        let h = reg.histogram_with("tsp_latency_seconds", &[("case", "h")], "prop histogram");
        let ts = store(reg);

        // Samples recorded before the first snapshot are baseline — they
        // can never appear in any window, so the oracle starts attributing
        // only after this tick.
        ts.tick_at(0.0);
        let mut t = 0.0;
        // Snapshot times and the samples attributed to each snapshot
        // (recorded since the previous one), oldest first.
        let mut eras: Vec<(f64, Vec<f64>)> = vec![(0.0, Vec::new())];
        for _ in 0..ticks {
            let n = (m.next() % 20) as usize;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                // Log-uniform-ish over ~7 decades, same territory as
                // service latencies.
                let v = 1e-6 * 10f64.powf(7.0 * m.unit());
                h.record(v);
                batch.push(v);
            }
            t += 0.1 + 4.9 * m.unit();
            ts.tick_at(t);
            eras.push((t, batch));
            if eras.len() > HIST_CAPACITY {
                eras.remove(0);
            }
        }

        let times: Vec<f64> = eras.iter().map(|&(t, _)| t).collect();
        let t_end = *times.last().unwrap();
        let a = anchor_index(&times, t_end - window);
        // Samples in (t_anchor, t_end]: everything attributed to
        // snapshots after the anchor.
        let oracle = ms_telemetry::Histogram::detached("tsp_oracle");
        let mut want_count = 0u64;
        for (_, batch) in &eras[a + 1..] {
            for &v in batch {
                oracle.record(v);
                want_count += 1;
            }
        }

        let got = ts
            .hist_window("tsp_latency_seconds", &[("case", "h")], window)
            .expect("two snapshots exist");
        prop_assert_eq!(got.count, want_count);
        prop_assert!((got.elapsed - (t_end - times[a])).abs() < 1e-12);
        if want_count > 0 {
            prop_assert_eq!(got.p50, oracle.percentile(0.50));
            prop_assert_eq!(got.p99, oracle.percentile(0.99));
        } else {
            prop_assert_eq!(got.p50, 0.0);
            prop_assert_eq!(got.p99, 0.0);
        }
    }
}
