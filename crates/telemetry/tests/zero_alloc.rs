//! The record path allocates nothing.
//!
//! A counting global allocator (same technique as `ms-nn`'s steady-state
//! test) verifies the registry's core contract: registration is the cold,
//! allocating step; recording through the returned handles — counter adds,
//! gauge stores, histogram records, and (when compiled) span enter/exit —
//! performs **zero** heap allocations. The counter is thread-local so the
//! harness' own threads cannot pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` keeps the hook safe during TLS teardown.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_COUNT.with(Cell::get);
    f();
    ALLOC_COUNT.with(Cell::get) - before
}

/// One test function so the warm-up (handle registration, span-site
/// resolution, thread-local span stack growth) and the measured steady
/// state share a single thread.
#[test]
fn steady_state_recording_allocates_nothing() {
    ms_telemetry::set_enabled(true);
    let reg = ms_telemetry::global();

    // Cold path: registration allocates — do all of it up front.
    let hits = reg.counter("za_hits_total", "test counter");
    let labeled = reg.counter_with("za_rate_total", &[("rate", "0.5")], "labeled");
    let depth = reg.gauge("za_depth", "test gauge");
    let service = reg.histogram("za_service_seconds", "test histogram");

    // Warm the record path once (first histogram touch, first span
    // enter resolving its site and reserving the thread's stack).
    hits.inc();
    labeled.add(2);
    depth.set(1.0);
    depth.add(0.5);
    service.record(3.4e-4);
    {
        let _outer = ms_telemetry::span!("za.outer");
        let _inner = ms_telemetry::span!("za.inner");
    }

    let delta = allocations(|| {
        for i in 0..10_000u64 {
            hits.inc();
            labeled.add(i & 3);
            depth.set(i as f64);
            depth.add(-0.25);
            service.record(1e-6 * (i + 1) as f64);
        }
    });
    assert_eq!(delta, 0, "metric recording allocated {delta}x");

    let delta = allocations(|| {
        for _ in 0..10_000 {
            let _outer = ms_telemetry::span!("za.outer");
            let _inner = ms_telemetry::span!("za.inner");
        }
    });
    assert_eq!(delta, 0, "span enter/exit allocated {delta}x");

    // Reading scalar values is also allocation-free (snapshot rendering is
    // not, and is not claimed to be).
    let delta = allocations(|| {
        assert!(hits.get() >= 10_000);
        assert!(service.count() >= 10_000);
        assert!(service.percentile(0.99) > 0.0);
    });
    assert_eq!(delta, 0, "scalar reads allocated {delta}x");

    #[cfg(feature = "telemetry-spans")]
    {
        // Each `span!` occurrence is its own site; aggregate by name (the
        // warm-up block and the measured loop are distinct sites).
        let snap = ms_telemetry::spans::snapshot();
        let calls = |name: &str| -> u64 {
            snap.iter()
                .filter(|s| s.name == name)
                .map(|s| s.calls)
                .sum()
        };
        assert!(calls("za.outer") >= 10_001, "outer calls: {snap:?}");
        assert!(calls("za.inner") >= 10_001, "inner calls: {snap:?}");
        for s in snap.iter().filter(|s| s.name.starts_with("za.")) {
            // Self time never exceeds total time.
            assert!(s.self_ns <= s.total_ns, "self > total: {s:?}");
        }
    }
}
