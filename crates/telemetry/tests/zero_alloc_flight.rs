//! Proves the flight-recorder record path is allocation-free in steady
//! state — with the recorder on (including ring wrap-around and chunk
//! refills) and with it off (the single-branch early-out) — using a
//! counting global allocator, the same technique as `zero_alloc.rs`.

use ms_telemetry::flight;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be unavailable during thread teardown.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Allocations observed on this thread while running `f`.
fn allocations(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_COUNT.with(|c| c.get());
    f();
    let after = ALLOC_COUNT.with(|c| c.get());
    after - before
}

fn full_chain(trace: u64) {
    flight::wire_decoded(trace, 2_000);
    flight::admitted(trace);
    flight::enqueued(trace);
    flight::sealed_into_batch(trace, trace, 0.75, 0.9);
    flight::dispatch_start(trace, 1);
    flight::compute_done(trace);
    flight::delivered(trace);
}

// One #[test] so the cold (allocating) ring initialization is sequenced
// before every measured region.
#[test]
fn flight_record_path_is_allocation_free() {
    // Cold path: set_recording(true) materializes the ring (one-time
    // allocation), the first record claims this thread's first chunk.
    flight::set_recording(true);
    full_chain(1);

    // Steady state, recorder ON. 20k chains × 7 events wraps the 65 536
    // slot ring twice over — wrap-around must recycle slots, not grow.
    let during_on = allocations(|| {
        for i in 0..20_000u64 {
            full_chain(2 + i);
        }
    });
    assert_eq!(
        during_on, 0,
        "recorder-on steady state must not allocate ({during_on} allocations seen)"
    );

    // Recorder OFF: every record site is one relaxed load and a branch.
    flight::set_recording(false);
    let during_off = allocations(|| {
        for i in 0..20_000u64 {
            full_chain(30_000 + i);
        }
    });
    assert_eq!(
        during_off, 0,
        "recorder-off path must not allocate ({during_off} allocations seen)"
    );

    // The untraced sentinel (trace_id == 0) is equally free.
    flight::set_recording(true);
    let during_untraced = allocations(|| {
        for _ in 0..20_000u64 {
            full_chain(0);
        }
    });
    assert_eq!(during_untraced, 0, "untraced records must not allocate");
    flight::set_recording(false);
}
