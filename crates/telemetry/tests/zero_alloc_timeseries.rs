//! The time-series steady state allocates nothing.
//!
//! Same counting-allocator technique as `zero_alloc.rs`, applied to the
//! sampling layer: series discovery and ring allocation are the cold,
//! first-tick step; every warm `tick_at` (registry snapshot into
//! preallocated rings), every windowed query (`counter_delta`,
//! `counter_rate`, `gauge_last`, `hist_window`) and every transition-free
//! `SloEngine::evaluate` must perform **zero** heap allocations — the
//! sampler thread runs forever at a fixed cadence, so any per-tick
//! allocation is an unbounded churn source.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` keeps the hook safe during TLS teardown.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(mut f: impl FnMut()) -> u64 {
    let before = ALLOC_COUNT.with(Cell::get);
    f();
    ALLOC_COUNT.with(Cell::get) - before
}

use ms_telemetry::slo::{SeriesRef, SloEngine, SloSpec};
use ms_telemetry::{Registry, TimeStore, TsConfig, WindowedHistogram};

#[test]
fn warm_sampler_tick_and_slo_evaluate_allocate_nothing() {
    ms_telemetry::set_enabled(true);
    let reg: &'static Registry = Box::leak(Box::new(Registry::new()));

    // Cold: registration, store construction, SLO engine gauges.
    let total = reg.counter_with("zat_requests_total", &[("server", "0")], "total");
    let bad = reg.counter_with("zat_miss_total", &[("server", "0")], "bad");
    let depth = reg.gauge_with("zat_depth", &[("server", "0")], "gauge");
    let service = reg.histogram_with("zat_service_seconds", &[("server", "0")], "histogram");
    let store = TimeStore::with_registry(
        reg,
        TsConfig {
            capacity: 64,
            hist_capacity: 8,
        },
    );
    let mut spec = SloSpec::new(
        "deadline",
        SeriesRef::new("zat_miss_total", &[("server", "0")]),
        SeriesRef::new("zat_requests_total", &[("server", "0")]),
        0.99,
    );
    // Second-scale windows so the evaluations below see real spans.
    spec.fast.short_window = 1.0;
    spec.fast.long_window = 4.0;
    spec.slow.short_window = 4.0;
    spec.slow.long_window = 16.0;
    let engine = SloEngine::with_registry(reg, vec![spec]);

    // First tick discovers every series and allocates its rings; the
    // second one warms the ring-wraparound path too. First evaluate warms
    // the engine (gauge first-touch).
    let mut t = 0.0;
    for _ in 0..3 {
        total.add(10);
        depth.set(1.0);
        service.record(1e-4);
        t += 1.0;
        store.tick_at(t);
        engine.evaluate(&store, t);
    }

    // Steady state: bursts, ticks (with ring wraparound — 64 slots, 200
    // ticks), windowed queries and healthy (transition-free) SLO
    // evaluations. Zero heap allocations, total.
    let labels: &[(&str, &str)] = &[("server", "0")];
    let delta = allocations(|| {
        for i in 0..200u64 {
            total.add(i & 7);
            depth.set(i as f64);
            service.record(1e-5 * (i + 1) as f64);
            t += 1.0;
            store.tick_at(t);
            engine.evaluate(&store, t);
            assert!(store.counter_delta("zat_requests_total", labels, 4.0).is_some());
            assert!(store.counter_rate("zat_requests_total", labels, 4.0).is_some());
            assert!(store.gauge_last("zat_depth", labels).is_some());
            assert!(store.hist_window("zat_service_seconds", labels, 4.0).is_some());
            assert!(!engine.is_firing("deadline", "fast"));
        }
    });
    assert_eq!(delta, 0, "warm sampling allocated {delta}x");
    let _ = bad; // registered to give the SLO a real (never-incremented) bad series

    // The windowed-histogram refresh path (the router's per-refresh work)
    // is allocation-free too once constructed.
    let mut w = WindowedHistogram::new(service.clone());
    w.refresh();
    let delta = allocations(|| {
        for i in 0..100u64 {
            service.record(1e-5 * (i + 1) as f64);
            let (count, p99) = w.refresh();
            assert!(count > 0 && p99 > 0.0);
        }
    });
    assert_eq!(delta, 0, "windowed refresh allocated {delta}x");
}
