//! Convolution lowering (im2col/col2im) and pooling kernels.
//!
//! Layout conventions: a single sample is `[C, H, W]` row-major. The im2col
//! buffer is `[C·KH·KW, OH·OW]` row-major with the channel index *outermost*
//! in the row dimension — this is load-bearing for model slicing: the first
//! `c_act` input channels occupy the first `c_act·KH·KW` rows, i.e. a
//! contiguous prefix, so a sliced convolution is a plain sub-block GEMM (see
//! `crate::matmul`) with no data movement.

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad).saturating_sub(self.kh) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad).saturating_sub(self.kw) / self.stride + 1
    }

    /// Number of spatial output positions.
    #[inline]
    pub fn out_len(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Whether the geometry is valid (kernel fits in the padded input).
    pub fn is_valid(&self) -> bool {
        self.stride > 0
            && self.kh > 0
            && self.kw > 0
            && self.h + 2 * self.pad >= self.kh
            && self.w + 2 * self.pad >= self.kw
    }
}

/// Lowers `channels` input channels of a `[C, H, W]` sample into the im2col
/// buffer `col` of shape `[channels·KH·KW, OH·OW]` (row-major).
///
/// `col` must have exactly `channels * kh * kw * out_len` elements; it is
/// fully overwritten.
pub fn im2col(input: &[f32], channels: usize, geom: &ConvGeom, col: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let out_len = oh * ow;
    debug_assert!(geom.is_valid(), "invalid conv geometry {geom:?}");
    debug_assert!(input.len() >= channels * geom.h * geom.w);
    debug_assert_eq!(col.len(), channels * geom.kh * geom.kw * out_len);

    let mut row = 0usize;
    for c in 0..channels {
        let plane = &input[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let dst = &mut col[row * out_len..(row + 1) * out_len];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ki) as isize - geom.pad as isize;
                    if iy < 0 || iy as usize >= geom.h {
                        dst[idx..idx + ow].iter_mut().for_each(|v| *v = 0.0);
                        idx += ow;
                        continue;
                    }
                    let src_row = &plane[iy as usize * geom.w..(iy as usize + 1) * geom.w];
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kj) as isize - geom.pad as isize;
                        dst[idx] = if ix < 0 || ix as usize >= geom.w {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-adds an im2col-layout gradient back to the input gradient
/// (`dinput`, `[channels, H, W]`, accumulated — caller zeroes it first).
pub fn col2im(col: &[f32], channels: usize, geom: &ConvGeom, dinput: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let out_len = oh * ow;
    debug_assert_eq!(col.len(), channels * geom.kh * geom.kw * out_len);
    debug_assert!(dinput.len() >= channels * geom.h * geom.w);

    let mut row = 0usize;
    for c in 0..channels {
        let plane = &mut dinput[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ki in 0..geom.kh {
            for kj in 0..geom.kw {
                let src = &col[row * out_len..(row + 1) * out_len];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ki) as isize - geom.pad as isize;
                    if iy < 0 || iy as usize >= geom.h {
                        idx += ow;
                        continue;
                    }
                    let dst_row =
                        &mut plane[iy as usize * geom.w..(iy as usize + 1) * geom.w];
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kj) as isize - geom.pad as isize;
                        if ix >= 0 && (ix as usize) < geom.w {
                            dst_row[ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Max-pooling over one `[C, H, W]` sample. Writes the pooled output and the
/// flat argmax index (into the input plane) per output cell for backward.
pub fn maxpool_forward(
    input: &[f32],
    channels: usize,
    geom: &ConvGeom,
    output: &mut [f32],
    argmax: &mut [u32],
) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    debug_assert_eq!(output.len(), channels * oh * ow);
    debug_assert_eq!(argmax.len(), output.len());
    for c in 0..channels {
        let plane = &input[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        let out_plane = &mut output[c * oh * ow..(c + 1) * oh * ow];
        let arg_plane = &mut argmax[c * oh * ow..(c + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                for ki in 0..geom.kh {
                    let iy = (oy * geom.stride + ki) as isize - geom.pad as isize;
                    if iy < 0 || iy as usize >= geom.h {
                        continue;
                    }
                    for kj in 0..geom.kw {
                        let ix = (ox * geom.stride + kj) as isize - geom.pad as isize;
                        if ix < 0 || ix as usize >= geom.w {
                            continue;
                        }
                        let flat = iy as usize * geom.w + ix as usize;
                        let v = plane[flat];
                        if v > best {
                            best = v;
                            best_idx = flat as u32;
                        }
                    }
                }
                out_plane[oy * ow + ox] = best;
                arg_plane[oy * ow + ox] = best_idx;
            }
        }
    }
}

/// Max-pooling backward: routes each output gradient to its argmax input
/// cell (accumulating into `dinput`; caller zeroes it first).
pub fn maxpool_backward(
    doutput: &[f32],
    argmax: &[u32],
    channels: usize,
    geom: &ConvGeom,
    dinput: &mut [f32],
) {
    let out_len = geom.out_len();
    debug_assert_eq!(doutput.len(), channels * out_len);
    for c in 0..channels {
        let dplane = &mut dinput[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        let dout = &doutput[c * out_len..(c + 1) * out_len];
        let args = &argmax[c * out_len..(c + 1) * out_len];
        for (&g, &a) in dout.iter().zip(args) {
            dplane[a as usize] += g;
        }
    }
}

/// Global average pooling: `[C, H, W] → [C]`.
pub fn global_avgpool_forward(input: &[f32], channels: usize, hw: usize, output: &mut [f32]) {
    debug_assert_eq!(input.len(), channels * hw);
    debug_assert!(output.len() >= channels);
    let inv = 1.0 / hw as f32;
    for (c, out) in output.iter_mut().enumerate().take(channels) {
        let plane = &input[c * hw..(c + 1) * hw];
        *out = plane.iter().sum::<f32>() * inv;
    }
}

/// Global average pooling backward: spreads each channel gradient uniformly.
pub fn global_avgpool_backward(doutput: &[f32], channels: usize, hw: usize, dinput: &mut [f32]) {
    debug_assert!(doutput.len() >= channels);
    debug_assert_eq!(dinput.len(), channels * hw);
    let inv = 1.0 / hw as f32;
    for c in 0..channels {
        let g = doutput[c] * inv;
        for v in &mut dinput[c * hw..(c + 1) * hw] {
            *v += g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(h: usize, w: usize, k: usize, stride: usize, pad: usize) -> ConvGeom {
        ConvGeom {
            h,
            w,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_shape_math() {
        let g = geom(4, 4, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
        let g = geom(4, 4, 2, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
        let g = geom(5, 5, 3, 2, 1);
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
        assert!(!geom(2, 2, 5, 1, 0).is_valid());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col == input.
        let input: Vec<f32> = (0..8).map(|v| v as f32).collect(); // 2 ch, 2x2
        let g = geom(2, 2, 1, 1, 0);
        let mut col = vec![0.0; 2 * 4]; // 2 ch × (1·1 kernel) × 4 positions
        im2col(&input, 2, &g, &mut col);
        assert_eq!(col, input);
    }

    #[test]
    fn im2col_padding_produces_zeros() {
        let input = vec![1.0f32; 4]; // 1 ch, 2x2 of ones
        let g = geom(2, 2, 3, 1, 1);
        let mut col = vec![7.0; 9 * 4];
        im2col(&input, 1, &g, &mut col);
        // Centre tap (ki=1,kj=1) row must be all ones; corner tap (0,0) row
        // sees padding for output (0,0).
        let out_len = 4;
        let centre = &col[(3 + 1) * out_len..(3 + 2) * out_len];
        assert_eq!(centre, &[1.0, 1.0, 1.0, 1.0]);
        let corner = &col[0..out_len];
        assert_eq!(corner, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property that makes the conv backward pass correct.
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(3);
        let g = geom(5, 4, 3, 2, 1);
        let c = 3;
        let x: Vec<f32> = (0..c * 20).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let col_len = c * 9 * g.out_len();
        let y: Vec<f32> = (0..col_len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut col = vec![0.0; col_len];
        im2col(&x, c, &g, &mut col);
        let lhs: f64 = col.iter().zip(&y).map(|(a, b)| (a * b) as f64).sum();
        let mut xback = vec![0.0; x.len()];
        col2im(&y, c, &g, &mut xback);
        let rhs: f64 = x.iter().zip(&xback).map(|(a, b)| (a * b) as f64).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_roundtrip() {
        let input = vec![
            1.0, 2.0, //
            3.0, 4.0, //
        ];
        let g = geom(2, 2, 2, 2, 0);
        let mut out = vec![0.0; 1];
        let mut arg = vec![0u32; 1];
        maxpool_forward(&input, 1, &g, &mut out, &mut arg);
        assert_eq!(out, vec![4.0]);
        assert_eq!(arg, vec![3]);
        let mut dx = vec![0.0; 4];
        maxpool_backward(&[10.0], &arg, 1, &g, &mut dx);
        assert_eq!(dx, vec![0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let input = vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0]; // 2ch 2x2
        let mut out = vec![0.0; 2];
        global_avgpool_forward(&input, 2, 4, &mut out);
        assert_eq!(out, vec![4.0, 2.0]);
        let mut dx = vec![0.0; 8];
        global_avgpool_backward(&[4.0, 8.0], 2, 4, &mut dx);
        assert_eq!(dx, vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
