//! Error type for tensor construction and shape algebra.

use std::fmt;

/// Errors raised by fallible tensor operations.
///
/// Hot-path kernels (`matmul`, `conv`) use `debug_assert!` instead and are
/// documented as panicking on misuse; the fallible surface is the public
/// construction/reshape API where user input first enters the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape with a zero-sized dimension or an element count that does not
    /// match the provided buffer.
    ShapeMismatch {
        /// What the operation expected (human-readable).
        expected: String,
        /// What it got.
        got: String,
    },
    /// An axis index out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// Arguments were individually valid but mutually inconsistent
    /// (e.g. a convolution whose kernel is larger than its padded input).
    Incompatible(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::Incompatible(msg) => write!(f, "incompatible arguments: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = TensorError::ShapeMismatch {
            expected: "[2, 3]".into(),
            got: "[3, 2]".into(),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected [2, 3], got [3, 2]");
        let e = TensorError::AxisOutOfRange { axis: 4, rank: 2 };
        assert_eq!(e.to_string(), "axis 4 out of range for rank 2");
        let e = TensorError::Incompatible("kernel larger than input".into());
        assert_eq!(
            e.to_string(),
            "incompatible arguments: kernel larger than input"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::AxisOutOfRange { axis: 0, rank: 0 });
    }
}
