//! Weight initialisers.
//!
//! Kaiming/He initialisation is the default for ReLU networks (convs and
//! dense layers), Xavier/Glorot for tanh/sigmoid gates (LSTM). Fan-in is
//! always the *full* fan-in of the layer, not the sliced fan-in: model
//! slicing's input rescaling (see `ms-nn`) keeps activations scale-stable
//! across slice rates, so initialising for the full width is correct for
//! every subnet.

use crate::{SeededRng, Shape, Tensor};

/// Kaiming-normal initialisation: `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut SeededRng) -> Tensor {
    let shape = shape.into();
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..shape.numel()).map(|_| rng.normal(0.0, std)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Xavier-uniform initialisation: `U(-a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut SeededRng,
) -> Tensor {
    let shape = shape.into();
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let data = (0..shape.numel()).map(|_| rng.uniform(-a, a)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Uniform initialisation in `[-a, a]`, the classic LM embedding init.
pub fn uniform(shape: impl Into<Shape>, a: f32, rng: &mut SeededRng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.numel()).map(|_| rng.uniform(-a, a)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut rng = SeededRng::new(1);
        let t = kaiming_normal([64, 128], 128, &mut rng);
        let var = t.sq_norm() / t.numel() as f64;
        let expect = 2.0 / 128.0;
        assert!(
            (var - expect).abs() < expect * 0.15,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = SeededRng::new(2);
        let t = xavier_uniform([32, 32], 32, 32, &mut rng);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= a));
        // Not degenerate:
        assert!(t.max_abs() > a * 0.5);
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut rng = SeededRng::new(3);
        let t = uniform([100], 0.1, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_normal([4, 4], 4, &mut SeededRng::new(7));
        let b = kaiming_normal([4, 4], 4, &mut SeededRng::new(7));
        assert_eq!(a, b);
    }
}
