//! Dense `f32` tensor substrate for the model-slicing reproduction.
//!
//! This crate provides the numeric kernels that the neural-network layers in
//! `ms-nn` are built on: a row-major dense [`Tensor`], blocked matrix
//! multiplication with explicit leading dimensions (so sliced sub-blocks of a
//! weight matrix can be multiplied in place, which is the mechanism behind
//! model slicing), im2col convolution, pooling, activations and reductions,
//! and seeded weight initialisers.
//!
//! Everything is CPU-only, single-threaded and deterministic: the paper's
//! contribution is a *training scheme*, not a kernel library, so the kernels
//! here favour clarity, exact reproducibility and zero per-call allocation in
//! hot paths over absolute throughput.

pub mod conv;
pub mod error;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod panels;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use rng::SeededRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
