//! Row-major GEMM with explicit leading dimensions.
//!
//! The leading-dimension parameters are what make model slicing cheap: a
//! sliced dense layer multiplies the top-left `n_active × m_active` block of
//! its `N × M` weight matrix *in place* by passing `ld = M`, so no weight
//! copy is ever made when the slice rate changes (paper §3.1, Figure 1).
//!
//! Kernels are single-threaded (the target environment has one core) and
//! chosen per transpose case so the innermost loop is always contiguous in
//! memory. All functions panic (debug-assert) on inconsistent dimensions;
//! they are internal hot paths, not the validation boundary.

/// Whether an operand is logically transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`; all matrices are
/// row-major with leading dimensions (row strides) `lda`, `ldb`, `ldc`.
/// When `trans_a == Trans::No`, `A` is stored `m×k` with `lda >= k`;
/// when transposed it is stored `k×m` with `lda >= m` (likewise for `B`).
///
/// # Panics
/// Debug-asserts that every buffer is large enough for its
/// `(rows, cols, ld)` description.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(ldc >= n.max(1), "ldc {ldc} < n {n}");
    match trans_a {
        Trans::No => debug_assert!(
            lda >= k.max(1) && (m == 0 || a.len() >= (m - 1) * lda + k),
            "A buffer too small for {m}x{k} lda {lda}"
        ),
        Trans::Yes => debug_assert!(
            lda >= m.max(1) && (k == 0 || a.len() >= (k - 1) * lda + m),
            "A^T buffer too small for {k}x{m} lda {lda}"
        ),
    }
    match trans_b {
        Trans::No => debug_assert!(
            ldb >= n.max(1) && (k == 0 || b.len() >= (k - 1) * ldb + n),
            "B buffer too small for {k}x{n} ldb {ldb}"
        ),
        Trans::Yes => debug_assert!(
            ldb >= k.max(1) && (n == 0 || b.len() >= (n - 1) * ldb + k),
            "B^T buffer too small for {n}x{k} ldb {ldb}"
        ),
    }
    debug_assert!(m == 0 || c.len() >= (m - 1) * ldc + n);

    if m == 0 || n == 0 {
        return;
    }
    // Pre-scale C by beta once, then accumulate.
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(m) {
            for v in &mut row[..n] {
                *v *= beta;
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    match (trans_a, trans_b) {
        // C[i,:] += alpha * A[i,p] * B[p,:]  — contiguous inner loop over B rows.
        (Trans::No, Trans::No) => {
            for i in 0..m {
                let a_row = &a[i * lda..i * lda + k];
                let c_row = &mut c[i * ldc..i * ldc + n];
                for (p, &aip) in a_row.iter().enumerate() {
                    if aip == 0.0 {
                        continue;
                    }
                    let s = alpha * aip;
                    let b_row = &b[p * ldb..p * ldb + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += s * bv;
                    }
                }
            }
        }
        // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both rows contiguous.
        (Trans::No, Trans::Yes) => {
            for i in 0..m {
                let a_row = &a[i * lda..i * lda + k];
                let c_row = &mut c[i * ldc..i * ldc + n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * ldb..j * ldb + k];
                    *cv += alpha * dot(a_row, b_row);
                }
            }
        }
        // C[i,:] += alpha * A[p,i] * B[p,:] — stream both A and B by rows of p.
        (Trans::Yes, Trans::No) => {
            for p in 0..k {
                let a_row = &a[p * lda..p * lda + m];
                let b_row = &b[p * ldb..p * ldb + n];
                for (i, &api) in a_row.iter().enumerate() {
                    if api == 0.0 {
                        continue;
                    }
                    let s = alpha * api;
                    let c_row = &mut c[i * ldc..i * ldc + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += s * bv;
                    }
                }
            }
        }
        // C[i,j] += alpha * sum_p A[p,i] * B[j,p] — B row contiguous, A strided.
        (Trans::Yes, Trans::Yes) => {
            for i in 0..m {
                for j in 0..n {
                    let b_row = &b[j * ldb..j * ldb + k];
                    let mut acc = 0.0f32;
                    for (p, &bv) in b_row.iter().enumerate() {
                        acc += a[p * lda + i] * bv;
                    }
                    c[i * ldc + j] += alpha * acc;
                }
            }
        }
    }
}

/// Dot product with 4-way partial sums (helps the autovectoriser and reduces
/// sequential rounding without changing results run-to-run).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += ac[0] * bc[0];
        acc[1] += ac[1] * bc[1];
        acc[2] += ac[2] * bc[2];
        acc[3] += ac[3] * bc[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_rest.iter().zip(b_rest) {
        s += x * y;
    }
    s
}

/// Matrix–vector product: `y = alpha * op(A) * x + beta * y` where `op(A)` is
/// `m×n` row-major with leading dimension `lda`.
#[allow(clippy::too_many_arguments)]
pub fn gemv(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    gemm(
        trans,
        Trans::No,
        m,
        1,
        n,
        alpha,
        a,
        lda,
        x,
        1,
        beta,
        y,
        1,
    );
}

/// Reference (naive, unblocked) GEMM used by tests to validate the kernels.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let at = |i: usize, p: usize| match trans_a {
        Trans::No => a[i * lda + p],
        Trans::Yes => a[p * lda + i],
    };
    let bt = |p: usize, j: usize| match trans_b {
        Trans::No => b[p * ldb + j],
        Trans::Yes => b[j * ldb + p],
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += at(i, p) as f64 * bt(p, j) as f64;
            }
            c[i * ldc + j] = alpha * acc as f32 + beta * c[i * ldc + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn random_buf(rng: &mut SeededRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn check_case(trans_a: Trans, trans_b: Trans, m: usize, n: usize, k: usize, pad: usize) {
        let mut rng = SeededRng::new(42);
        let (ar, ac) = match trans_a {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match trans_b {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let lda = ac + pad;
        let ldb = bc + pad;
        let ldc = n + pad;
        let a = random_buf(&mut rng, ar * lda);
        let b = random_buf(&mut rng, br * ldb);
        let c0 = random_buf(&mut rng, m * ldc);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        gemm(
            trans_a, trans_b, m, n, k, 0.7, &a, lda, &b, ldb, 0.3, &mut c_fast, ldc,
        );
        gemm_reference(
            trans_a, trans_b, m, n, k, 0.7, &a, lda, &b, ldb, 0.3, &mut c_ref, ldc,
        );
        for (i, (x, y)) in c_fast.iter().zip(c_ref.iter()).enumerate() {
            assert!(
                (x - y).abs() < 1e-4,
                "mismatch at {i}: {x} vs {y} ({trans_a:?},{trans_b:?} m={m} n={n} k={k} pad={pad})"
            );
        }
    }

    #[test]
    fn all_transpose_cases_match_reference() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 2, 9), (2, 17, 4)] {
            for &pad in &[0usize, 3] {
                check_case(Trans::No, Trans::No, m, n, k, pad);
                check_case(Trans::No, Trans::Yes, m, n, k, pad);
                check_case(Trans::Yes, Trans::No, m, n, k, pad);
                check_case(Trans::Yes, Trans::Yes, m, n, k, pad);
            }
        }
    }

    #[test]
    fn sliced_block_multiplication() {
        // Multiply only the top-left 2x3 block of a 4x5 matrix by passing ld=5,
        // which is exactly how sliced dense layers use the kernel.
        let w: Vec<f32> = (0..20).map(|v| v as f32).collect(); // 4x5
        let x = vec![1.0f32, 1.0, 1.0]; // 3-vector
        let mut y = vec![0.0f32; 2];
        // y = W[0..2, 0..3] * x
        gemv(Trans::No, 2, 3, 1.0, &w, 5, &x, 0.0, &mut y);
        assert_eq!(y, vec![0. + 1. + 2., 5. + 6. + 7.]);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![f32::NAN; 4];
        // beta=0 must not propagate NaN from the old C values in the
        // pre-scale path: 0 * NaN would be NaN, so the scale loop writes
        // `*= 0` — document the behaviour: pre-scaling multiplies.
        // We therefore use explicit overwrite semantics in the layers by
        // zeroing buffers; this test pins the current (BLAS-like) behaviour.
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        // 0.0 * NaN = NaN in IEEE; the kernel pre-scales, so results are NaN.
        // Layers always pass zeroed buffers with beta=1 or finite C with
        // beta=0; assert the finite case works:
        let mut c = vec![7.0f32; 4];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, vec![2.0; 4]);
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = SeededRng::new(7);
        for len in [0usize, 1, 3, 4, 5, 17, 64] {
            let a = random_buf(&mut rng, len);
            let b = random_buf(&mut rng, len);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "len {len}");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut c: Vec<f32> = vec![];
        gemm(
            Trans::No,
            Trans::No,
            0,
            0,
            0,
            1.0,
            &a,
            1,
            &b,
            1,
            1.0,
            &mut c,
            1,
        );
    }
}
