//! Row-major GEMM with explicit leading dimensions.
//!
//! The leading-dimension parameters are what make model slicing cheap: a
//! sliced dense layer multiplies the top-left `n_active × m_active` block of
//! its `N × M` weight matrix *in place* by passing `ld = M`, so no weight
//! copy is ever made when the slice rate changes (paper §3.1, Figure 1).
//!
//! # Kernel structure
//!
//! Large multiplies go through a BLIS-style packed path: panels of `op(A)`
//! (`MC×KC`) and `op(B)` (`KC×NC`) are packed into contiguous, zero-padded
//! buffers laid out so the `MR×NR` register-tile micro-kernel reads both
//! operands sequentially. All four transpose cases differ only in the pack
//! routines — the micro-kernel is shared, which also gives the previously
//! column-strided `(Yes, Yes)` case a contiguous inner loop. Problems below
//! [`SMALL_GEMM_CUTOFF`] use [`gemm_unblocked`], whose per-case loops beat
//! packing overhead at tiny sizes.
//!
//! Pack buffers are thread-local and grow-only, so steady-state calls do no
//! heap allocation.
//!
//! # Determinism
//!
//! Accumulation order is a pure function of `(m, n, k)` and the block
//! constants, so results are bitwise reproducible run to run (they are not
//! bitwise-identical to the pre-packing kernel, which accumulated in a
//! different order). `fmadd` compiles to hardware FMA when the target has
//! it (`.cargo/config.toml` sets `target-cpu=native`) and to `a * b + c`
//! otherwise — each build is internally consistent.
//!
//! Kernels are single-threaded (the target environment has one core). All
//! functions panic (debug-assert) on inconsistent dimensions; they are
//! internal hot paths, not the validation boundary.

use std::cell::RefCell;

/// Whether an operand is logically transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Micro-kernel tile rows: 12 of the 16 AVX2 `ymm` registers hold the
/// `MR × NR` f32 accumulator (6 rows × two 8-lane vectors), leaving room
/// for the `B` row vectors and the broadcast `A` element.
pub(crate) const MR: usize = 6;
/// Micro-kernel tile columns (two 8-lane f32 vectors).
pub(crate) const NR: usize = 16;
/// Rows of `op(A)` packed per panel (multiple of `MR`; panel ≈ 72 KiB at
/// `KC=256`, sized for L2).
pub(crate) const MC: usize = 72;
/// Shared dimension per panel: the micro-kernel streams `KC·(MR+NR)` packed
/// floats per tile, sized so a `B` strip stays cache-resident.
pub(crate) const KC: usize = 256;
/// Columns of `op(B)` packed per panel (multiple of `NR`).
pub(crate) const NC: usize = 1024;
/// Problems with `m·n·k` at or below this use the unblocked kernel: packing
/// costs `O(mk + kn)` and only pays off once each packed element is reused
/// across several tiles.
const SMALL_GEMM_CUTOFF: usize = 8192;

thread_local! {
    /// Grow-only pack buffers (`op(A)` panel, `op(B)` panel), reused across
    /// calls so steady-state GEMM performs zero heap allocations.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with the thread-local pack buffers (shared with [`gemm`] and the
/// prepacked-panel entry points in [`crate::panels`]).
pub(crate) fn with_pack_bufs<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
    PACK_BUFS.with(|bufs| {
        let (ref mut apack, ref mut bpack) = *bufs.borrow_mut();
        f(apack, bpack)
    })
}

/// Fused multiply-add `a * b + c` on hardware FMA; plain `a * b + c` when
/// the target lacks it (where `f32::mul_add` would be a slow libm call).
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`; all matrices are
/// row-major with leading dimensions (row strides) `lda`, `ldb`, `ldc`.
/// When `trans_a == Trans::No`, `A` is stored `m×k` with `lda >= k`;
/// when transposed it is stored `k×m` with `lda >= m` (likewise for `B`).
///
/// `C` is pre-scaled by `beta` (BLAS-like: `beta = 0` multiplies, so NaN in
/// `C` stays NaN), then `alpha * op(A)·op(B)` is accumulated.
///
/// # Panics
/// Debug-asserts that every buffer is large enough for its
/// `(rows, cols, ld)` description.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    debug_check(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc);

    if m == 0 || n == 0 {
        return;
    }
    // Pre-scale C by beta once, then accumulate.
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(m) {
            for v in &mut row[..n] {
                *v *= beta;
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    if m * n * k <= SMALL_GEMM_CUTOFF {
        gemm_accumulate_unblocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
        return;
    }

    // Span sites compile to nothing without `telemetry-spans`; with it,
    // they attribute packed-GEMM time to packing vs micro-kernel work.
    let _span_gemm = ms_telemetry::span!("gemm.packed");
    PACK_BUFS.with(|bufs| {
        let (ref mut apack, ref mut bpack) = *bufs.borrow_mut();
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let nc_strips = nc.div_ceil(NR);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                {
                    let _s = ms_telemetry::span!("gemm.pack_b");
                    pack_b(trans_b, b, ldb, pc, kc, jc, nc, bpack);
                }
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    let mc_strips = mc.div_ceil(MR);
                    {
                        let _s = ms_telemetry::span!("gemm.pack_a");
                        pack_a(trans_a, a, lda, ic, mc, pc, kc, apack);
                    }
                    let _s = ms_telemetry::span!("gemm.kernel");
                    for jr in 0..nc_strips {
                        let nr = NR.min(nc - jr * NR);
                        let bp = &bpack[jr * kc * NR..(jr + 1) * kc * NR];
                        for ir in 0..mc_strips {
                            let mr = MR.min(mc - ir * MR);
                            let ap = &apack[ir * kc * MR..(ir + 1) * kc * MR];
                            let c_off = (ic + ir * MR) * ldc + jc + jr * NR;
                            micro_kernel(kc, alpha, ap, bp, c, c_off, ldc, mr, nr);
                        }
                    }
                }
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn debug_check(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(ldc >= n.max(1), "ldc {ldc} < n {n}");
    match trans_a {
        Trans::No => debug_assert!(
            lda >= k.max(1) && (m == 0 || a.len() >= (m - 1) * lda + k),
            "A buffer too small for {m}x{k} lda {lda}"
        ),
        Trans::Yes => debug_assert!(
            lda >= m.max(1) && (k == 0 || a.len() >= (k - 1) * lda + m),
            "A^T buffer too small for {k}x{m} lda {lda}"
        ),
    }
    match trans_b {
        Trans::No => debug_assert!(
            ldb >= n.max(1) && (k == 0 || b.len() >= (k - 1) * ldb + n),
            "B buffer too small for {k}x{n} ldb {ldb}"
        ),
        Trans::Yes => debug_assert!(
            ldb >= k.max(1) && (n == 0 || b.len() >= (n - 1) * ldb + k),
            "B^T buffer too small for {n}x{k} ldb {ldb}"
        ),
    }
    debug_assert!(m == 0 || c.len() >= (m - 1) * ldc + n);
}

/// Packs the `mc×kc` panel of `op(A)` starting at `(ic, pc)` into strips of
/// `MR` rows, each strip laid out `kc`-major so the micro-kernel reads
/// `MR` consecutive floats per `p` step. Rows past `mc` are zero padding.
pub(crate) fn pack_a(
    trans_a: Trans,
    a: &[f32],
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    buf: &mut Vec<f32>,
) {
    let strips = mc.div_ceil(MR);
    buf.clear();
    buf.resize(strips * kc * MR, 0.0);
    pack_a_into(trans_a, a, lda, ic, mc, pc, kc, buf);
}

/// [`pack_a`] writing into a caller-provided slice of exactly
/// `mc.div_ceil(MR) * kc * MR` floats whose padding region is already zero.
pub(crate) fn pack_a_into(
    trans_a: Trans,
    a: &[f32],
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    buf: &mut [f32],
) {
    let strips = mc.div_ceil(MR);
    debug_assert_eq!(buf.len(), strips * kc * MR);
    let mut off = 0;
    for s in 0..strips {
        let i_base = ic + s * MR;
        let rows = MR.min(mc - s * MR);
        match trans_a {
            Trans::No => {
                for ii in 0..rows {
                    let src = &a[(i_base + ii) * lda + pc..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        buf[off + p * MR + ii] = v;
                    }
                }
            }
            Trans::Yes => {
                for p in 0..kc {
                    let src = &a[(pc + p) * lda + i_base..][..rows];
                    let dst = &mut buf[off + p * MR..off + p * MR + rows];
                    dst.copy_from_slice(src);
                }
            }
        }
        off += kc * MR;
    }
}

/// Packs the `kc×nc` panel of `op(B)` starting at `(pc, jc)` into strips of
/// `NR` columns, each strip `kc`-major so the micro-kernel loads one
/// `NR`-wide row vector per `p` step. Columns past `nc` are zero padding.
pub(crate) fn pack_b(
    trans_b: Trans,
    b: &[f32],
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    buf: &mut Vec<f32>,
) {
    let strips = nc.div_ceil(NR);
    buf.clear();
    buf.resize(strips * kc * NR, 0.0);
    pack_b_into(trans_b, b, ldb, pc, kc, jc, nc, buf);
}

/// [`pack_b`] writing into a caller-provided slice of exactly
/// `nc.div_ceil(NR) * kc * NR` floats whose padding region is already zero.
pub(crate) fn pack_b_into(
    trans_b: Trans,
    b: &[f32],
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    buf: &mut [f32],
) {
    let strips = nc.div_ceil(NR);
    debug_assert_eq!(buf.len(), strips * kc * NR);
    let mut off = 0;
    for t in 0..strips {
        let j_base = jc + t * NR;
        let cols = NR.min(nc - t * NR);
        match trans_b {
            Trans::No => {
                for p in 0..kc {
                    let src = &b[(pc + p) * ldb + j_base..][..cols];
                    let dst = &mut buf[off + p * NR..off + p * NR + cols];
                    dst.copy_from_slice(src);
                }
            }
            Trans::Yes => {
                for jj in 0..cols {
                    let src = &b[(j_base + jj) * ldb + pc..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        buf[off + p * NR + jj] = v;
                    }
                }
            }
        }
        off += kc * NR;
    }
}

/// The shared register-tile accumulator: `MR×NR` partial products of packed
/// `op(A)`/`op(B)` strips over `kc` steps. Constant loop bounds let the
/// autovectoriser emit two 8-lane FMA chains per row. The result for lane
/// `(i, j)` is a pure function of the strips and `kc`, independent of which
/// write-back window a caller later applies — the property the prefix-refine
/// path's bitwise guarantee rests on.
#[inline(always)]
fn micro_accumulate(kc: usize, ap: &[f32], bp: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (a_col, b_row) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let a_col: &[f32; MR] = a_col.try_into().unwrap();
        let b_row: &[f32; NR] = b_row.try_into().unwrap();
        for i in 0..MR {
            let aip = a_col[i];
            for j in 0..NR {
                acc[i][j] = fmadd(aip, b_row[j], acc[i][j]);
            }
        }
    }
    acc
}

/// Range-windowed micro-kernel used by the prepacked-panel entry points:
/// accumulates the full `MR×NR` tile, then writes back only rows
/// `[i0, i1)` and columns `[j0, j1)` of the tile, at
/// `c[c_off + (i - i0) * ldc + (j - j0)]`. Because the accumulator is
/// window-independent, a lane's value is bitwise identical no matter which
/// group range requested it.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn micro_kernel_range(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
) {
    let acc = micro_accumulate(kc, ap, bp);
    for i in i0..i1 {
        let row = &mut c[c_off + (i - i0) * ldc..c_off + (i - i0) * ldc + (j1 - j0)];
        for (jj, cv) in row.iter_mut().enumerate() {
            *cv = fmadd(alpha, acc[i][j0 + jj], *cv);
        }
    }
}

/// The register-tile kernel: accumulates an `MR×NR` block of `op(A)·op(B)`
/// from packed strips, then adds `alpha ×` the valid `mr×nr` region into
/// `C`. The accumulator loop has constant bounds so the autovectoriser
/// turns each row into two 8-lane FMA chains.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel(
    kc: usize,
    alpha: f32,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let acc = micro_accumulate(kc, ap, bp);
    if mr == MR && nr == NR {
        // Full tile: constant-bound write-back.
        for (i, acc_row) in acc.iter().enumerate() {
            let row = &mut c[c_off + i * ldc..c_off + i * ldc + NR];
            for j in 0..NR {
                row[j] = fmadd(alpha, acc_row[j], row[j]);
            }
        }
    } else {
        // Edge tile: the accumulator's padded lanes are zero; write only
        // the region that exists in C.
        for (i, acc_row) in acc.iter().enumerate().take(mr) {
            let row = &mut c[c_off + i * ldc..c_off + i * ldc + nr];
            for (j, cv) in row.iter_mut().enumerate() {
                *cv = fmadd(alpha, acc_row[j], *cv);
            }
        }
    }
}

/// The pre-packing kernel, retained verbatim as (a) the small-problem path,
/// where per-case contiguous loops beat packing overhead, and (b) the
/// "before" baseline for `ms-bench`'s `bench_snapshot` perf trajectory.
///
/// Semantics are identical to [`gemm`] (including the `beta` pre-scale).
#[allow(clippy::too_many_arguments)]
pub fn gemm_unblocked(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    debug_check(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc);
    if m == 0 || n == 0 {
        return;
    }
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(m) {
            for v in &mut row[..n] {
                *v *= beta;
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    gemm_accumulate_unblocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// `C += alpha * op(A)·op(B)` with one contiguous-inner-loop strategy per
/// transpose case (the pre-packing dispatch).
#[allow(clippy::too_many_arguments)]
fn gemm_accumulate_unblocked(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
) {
    match (trans_a, trans_b) {
        // C[i,:] += alpha * A[i,p] * B[p,:]  — contiguous inner loop over B rows.
        (Trans::No, Trans::No) => {
            for i in 0..m {
                let a_row = &a[i * lda..i * lda + k];
                let c_row = &mut c[i * ldc..i * ldc + n];
                for (p, &aip) in a_row.iter().enumerate() {
                    if aip == 0.0 {
                        continue;
                    }
                    let s = alpha * aip;
                    let b_row = &b[p * ldb..p * ldb + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv = fmadd(s, bv, *cv);
                    }
                }
            }
        }
        // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both rows contiguous.
        (Trans::No, Trans::Yes) => {
            for i in 0..m {
                let a_row = &a[i * lda..i * lda + k];
                let c_row = &mut c[i * ldc..i * ldc + n];
                for (j, cv) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * ldb..j * ldb + k];
                    *cv = fmadd(alpha, dot(a_row, b_row), *cv);
                }
            }
        }
        // C[i,:] += alpha * A[p,i] * B[p,:] — stream both A and B by rows of p.
        (Trans::Yes, Trans::No) => {
            for p in 0..k {
                let a_row = &a[p * lda..p * lda + m];
                let b_row = &b[p * ldb..p * ldb + n];
                for (i, &api) in a_row.iter().enumerate() {
                    if api == 0.0 {
                        continue;
                    }
                    let s = alpha * api;
                    let c_row = &mut c[i * ldc..i * ldc + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv = fmadd(s, bv, *cv);
                    }
                }
            }
        }
        // C[i,j] += alpha * sum_p A[p,i] * B[j,p] — B row contiguous, A strided.
        (Trans::Yes, Trans::Yes) => {
            for i in 0..m {
                for j in 0..n {
                    let b_row = &b[j * ldb..j * ldb + k];
                    let mut acc = 0.0f32;
                    for (p, &bv) in b_row.iter().enumerate() {
                        acc = fmadd(a[p * lda + i], bv, acc);
                    }
                    c[i * ldc + j] = fmadd(alpha, acc, c[i * ldc + j]);
                }
            }
        }
    }
}

/// Dot product with 8 independent partial sums (one AVX2 FMA chain per
/// lane group; the fixed reduction tree keeps results run-to-run
/// deterministic).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    let (a8, a_rest) = a.split_at(chunks * 8);
    let (b8, b_rest) = b.split_at(chunks * 8);
    for (ac, bc) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
        for l in 0..8 {
            acc[l] = fmadd(ac[l], bc[l], acc[l]);
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (x, y) in a_rest.iter().zip(b_rest) {
        s = fmadd(*x, *y, s);
    }
    s
}

/// Matrix–vector product: `y = alpha * op(A) * x + beta * y` where `op(A)` is
/// `m×n` row-major with leading dimension `lda`.
///
/// Dedicated kernels per transpose (rather than `gemm` with `n = 1`, whose
/// contiguous inner loop would have length 1): `Trans::No` is a row-dot per
/// output, `Trans::Yes` streams stored rows with an axpy per input. This is
/// the batch-1 serving hot path.
#[allow(clippy::too_many_arguments)]
pub fn gemv(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    match trans {
        Trans::No => debug_assert!(
            lda >= n.max(1) && (m == 0 || a.len() >= (m - 1) * lda + n),
            "A buffer too small for {m}x{n} lda {lda}"
        ),
        Trans::Yes => debug_assert!(
            lda >= m.max(1) && (n == 0 || a.len() >= (n - 1) * lda + m),
            "A^T buffer too small for {n}x{m} lda {lda}"
        ),
    }
    debug_assert!(x.len() >= n);
    debug_assert!(y.len() >= m);

    if m == 0 {
        return;
    }
    // Same beta semantics as gemm: pre-scale, then accumulate.
    if beta != 1.0 {
        for v in &mut y[..m] {
            *v *= beta;
        }
    }
    if n == 0 || alpha == 0.0 {
        return;
    }
    match trans {
        // y[i] += alpha * dot(A[i, :], x) — one contiguous row-dot per output.
        Trans::No => {
            let x = &x[..n];
            for (i, yv) in y.iter_mut().enumerate().take(m) {
                let a_row = &a[i * lda..i * lda + n];
                *yv = fmadd(alpha, dot(a_row, x), *yv);
            }
        }
        // y += alpha * x[p] * A[p, :] — axpy over contiguous stored rows.
        Trans::Yes => {
            let y = &mut y[..m];
            for (p, &xp) in x.iter().enumerate().take(n) {
                if xp == 0.0 {
                    continue;
                }
                let s = alpha * xp;
                let a_row = &a[p * lda..p * lda + m];
                for (yv, &av) in y.iter_mut().zip(a_row) {
                    *yv = fmadd(s, av, *yv);
                }
            }
        }
    }
}

/// Reference (naive, unblocked, f64-accumulating) GEMM used by tests to
/// validate the kernels.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let at = |i: usize, p: usize| match trans_a {
        Trans::No => a[i * lda + p],
        Trans::Yes => a[p * lda + i],
    };
    let bt = |p: usize, j: usize| match trans_b {
        Trans::No => b[p * ldb + j],
        Trans::Yes => b[j * ldb + p],
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += at(i, p) as f64 * bt(p, j) as f64;
            }
            c[i * ldc + j] = alpha * acc as f32 + beta * c[i * ldc + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn random_buf(rng: &mut SeededRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn check_case_ab(
        trans_a: Trans,
        trans_b: Trans,
        m: usize,
        n: usize,
        k: usize,
        pad: usize,
        alpha: f32,
        beta: f32,
    ) {
        let mut rng = SeededRng::new(42);
        let (ar, ac) = match trans_a {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match trans_b {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let lda = ac + pad;
        let ldb = bc + pad;
        let ldc = n + pad;
        let a = random_buf(&mut rng, ar * lda);
        let b = random_buf(&mut rng, br * ldb);
        let c0 = random_buf(&mut rng, m * ldc);
        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        gemm(
            trans_a,
            trans_b,
            m,
            n,
            k,
            alpha,
            &a,
            lda,
            &b,
            ldb,
            beta,
            &mut c_fast,
            ldc,
        );
        gemm_reference(
            trans_a, trans_b, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_ref, ldc,
        );
        // Scale tolerance with k: the kernel accumulates in f32 while the
        // reference uses f64.
        let tol = 1e-4 * (1.0 + (k as f32).sqrt() * 0.1);
        for (i, (x, y)) in c_fast.iter().zip(c_ref.iter()).enumerate() {
            assert!(
                (x - y).abs() < tol,
                "mismatch at {i}: {x} vs {y} \
                 ({trans_a:?},{trans_b:?} m={m} n={n} k={k} pad={pad} a={alpha} b={beta})"
            );
        }
    }

    fn check_case(trans_a: Trans, trans_b: Trans, m: usize, n: usize, k: usize, pad: usize) {
        check_case_ab(trans_a, trans_b, m, n, k, pad, 0.7, 0.3);
    }

    #[test]
    fn all_transpose_cases_match_reference() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (8, 8, 8), (13, 2, 9), (2, 17, 4)] {
            for &pad in &[0usize, 3] {
                check_case(Trans::No, Trans::No, m, n, k, pad);
                check_case(Trans::No, Trans::Yes, m, n, k, pad);
                check_case(Trans::Yes, Trans::No, m, n, k, pad);
                check_case(Trans::Yes, Trans::Yes, m, n, k, pad);
            }
        }
    }

    /// Shapes chosen to land on every packed-path boundary: partial MR/NR
    /// edge tiles, multiple KC blocks, multiple MC panels, and (with `pad`)
    /// leading dimensions larger than the logical width.
    #[test]
    fn packed_path_blocking_boundaries_match_reference() {
        let cases = [
            (MR + 1, NR + 1, KC + 5),     // edge tiles + two KC blocks
            (MC + 3, NR, 40),             // two MC panels
            (2 * MR, 3 * NR + 7, KC - 1), // full strips + ragged N edge
            (33, 47, 65),                 // nothing aligned at all
        ];
        for &(m, n, k) in &cases {
            for &pad in &[0usize, 5] {
                check_case(Trans::No, Trans::No, m, n, k, pad);
                check_case(Trans::No, Trans::Yes, m, n, k, pad);
                check_case(Trans::Yes, Trans::No, m, n, k, pad);
                check_case(Trans::Yes, Trans::Yes, m, n, k, pad);
            }
        }
    }

    #[test]
    fn alpha_beta_grid_matches_reference() {
        for &alpha in &[0.0f32, 0.5, 1.0] {
            for &beta in &[0.0f32, 0.5, 1.0] {
                // One small (unblocked) and one packed-path shape each.
                check_case_ab(Trans::No, Trans::Yes, 5, 6, 7, 2, alpha, beta);
                check_case_ab(Trans::Yes, Trans::No, 25, 33, 41, 3, alpha, beta);
            }
        }
    }

    #[test]
    fn unblocked_kernel_matches_reference() {
        for &(m, n, k) in &[(3, 5, 7), (13, 2, 9), (31, 17, 23)] {
            let mut rng = SeededRng::new(7);
            let a = random_buf(&mut rng, m * k);
            let b = random_buf(&mut rng, k * n);
            let c0 = random_buf(&mut rng, m * n);
            let mut c_fast = c0.clone();
            let mut c_ref = c0;
            gemm_unblocked(
                Trans::No,
                Trans::No,
                m,
                n,
                k,
                0.7,
                &a,
                k,
                &b,
                n,
                0.3,
                &mut c_fast,
                n,
            );
            gemm_reference(
                Trans::No,
                Trans::No,
                m,
                n,
                k,
                0.7,
                &a,
                k,
                &b,
                n,
                0.3,
                &mut c_ref,
                n,
            );
            for (x, y) in c_fast.iter().zip(&c_ref) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sliced_block_multiplication() {
        // Multiply only the top-left 2x3 block of a 4x5 matrix by passing ld=5,
        // which is exactly how sliced dense layers use the kernel.
        let w: Vec<f32> = (0..20).map(|v| v as f32).collect(); // 4x5
        let x = vec![1.0f32, 1.0, 1.0]; // 3-vector
        let mut y = vec![0.0f32; 2];
        // y = W[0..2, 0..3] * x
        gemv(Trans::No, 2, 3, 1.0, &w, 5, &x, 0.0, &mut y);
        assert_eq!(y, vec![0. + 1. + 2., 5. + 6. + 7.]);
    }

    #[test]
    fn sliced_packed_block_multiplication() {
        // Same in-place sub-block contract on the packed path: top-left
        // 60x60 block of a 100x100 matrix via ld=100.
        let full = 100usize;
        let m = 60usize;
        let mut rng = SeededRng::new(17);
        let a = random_buf(&mut rng, full * full);
        let b = random_buf(&mut rng, full * full);
        let mut c_fast = vec![0.0f32; m * m];
        let mut c_ref = vec![0.0f32; m * m];
        gemm(
            Trans::No,
            Trans::Yes,
            m,
            m,
            m,
            1.0,
            &a,
            full,
            &b,
            full,
            0.0,
            &mut c_fast,
            m,
        );
        gemm_reference(
            Trans::No,
            Trans::Yes,
            m,
            m,
            m,
            1.0,
            &a,
            full,
            &b,
            full,
            0.0,
            &mut c_ref,
            m,
        );
        for (x, y) in c_fast.iter().zip(&c_ref) {
            assert!((x - y).abs() < 2e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_is_deterministic_run_to_run() {
        let mut rng = SeededRng::new(23);
        let (m, n, k) = (70, 50, 300); // multiple KC blocks + edge tiles
        let a = random_buf(&mut rng, m * k);
        let b = random_buf(&mut rng, k * n);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c1,
            n,
        );
        gemm(
            Trans::No,
            Trans::No,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c2,
            n,
        );
        assert_eq!(c1, c2, "bitwise reproducibility");
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![f32::NAN; 4];
        // beta=0 must not propagate NaN from the old C values in the
        // pre-scale path: 0 * NaN would be NaN, so the scale loop writes
        // `*= 0` — document the behaviour: pre-scaling multiplies.
        // We therefore use explicit overwrite semantics in the layers by
        // zeroing buffers; this test pins the current (BLAS-like) behaviour.
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        // 0.0 * NaN = NaN in IEEE; the kernel pre-scales, so results are NaN.
        // Layers always pass zeroed buffers with beta=1 or finite C with
        // beta=0; assert the finite case works:
        let mut c = vec![7.0f32; 4];
        gemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert_eq!(c, vec![2.0; 4]);
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = SeededRng::new(7);
        for len in [0usize, 1, 3, 4, 5, 8, 9, 17, 64, 100] {
            let a = random_buf(&mut rng, len);
            let b = random_buf(&mut rng, len);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "len {len}");
        }
    }

    #[test]
    fn dot_is_deterministic() {
        let mut rng = SeededRng::new(29);
        let a = random_buf(&mut rng, 1000);
        let b = random_buf(&mut rng, 1000);
        assert_eq!(dot(&a, &b), dot(&a, &b));
    }

    #[test]
    fn gemv_matches_gemm_both_transposes() {
        let mut rng = SeededRng::new(31);
        for &(m, n, pad) in &[
            (1usize, 1usize, 0usize),
            (7, 5, 0),
            (16, 33, 3),
            (64, 48, 1),
        ] {
            for &trans in &[Trans::No, Trans::Yes] {
                let (rows, cols) = match trans {
                    Trans::No => (m, n),
                    Trans::Yes => (n, m),
                };
                let lda = cols + pad;
                let a = random_buf(&mut rng, rows * lda);
                let x = random_buf(&mut rng, n);
                let y0 = random_buf(&mut rng, m);
                for &(alpha, beta) in &[(1.0f32, 0.0f32), (0.5, 0.5), (0.0, 1.0), (1.0, 1.0)] {
                    let mut y_fast = y0.clone();
                    let mut y_ref = y0.clone();
                    gemv(trans, m, n, alpha, &a, lda, &x, beta, &mut y_fast);
                    gemm_reference(
                        trans,
                        Trans::No,
                        m,
                        1,
                        n,
                        alpha,
                        &a,
                        lda,
                        &x,
                        1,
                        beta,
                        &mut y_ref,
                        1,
                    );
                    for (i, (p, q)) in y_fast.iter().zip(&y_ref).enumerate() {
                        assert!(
                            (p - q).abs() < 1e-4,
                            "gemv {trans:?} m={m} n={n} i={i}: {p} vs {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut c: Vec<f32> = vec![];
        gemm(
            Trans::No,
            Trans::No,
            0,
            0,
            0,
            1.0,
            &a,
            1,
            &b,
            1,
            1.0,
            &mut c,
            1,
        );
        let x: Vec<f32> = vec![];
        let mut y: Vec<f32> = vec![];
        gemv(Trans::No, 0, 0, 1.0, &a, 1, &x, 0.0, &mut y);
    }
}
