//! Elementwise activations, row-wise softmax and small reductions.
//!
//! Activations come in `(forward, backward)` pairs; backward functions take
//! the *forward output* where that is cheaper (sigmoid/tanh) and the forward
//! input where required (ReLU), matching what the layer caches store.

/// ReLU forward, in place.
pub fn relu_inplace(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: `dx = dy * (x > 0)`, written into `dy` in place given the
/// forward *input* `x`.
pub fn relu_backward_inplace(dy: &mut [f32], x: &[f32]) {
    debug_assert_eq!(dy.len(), x.len());
    for (g, &v) in dy.iter_mut().zip(x) {
        if v <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically safe sigmoid.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        let e = (-v).exp();
        1.0 / (1.0 + e)
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid derivative from the forward *output* `s`: `s * (1 - s)`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Tanh derivative from the forward *output* `t`: `1 - t²`.
#[inline]
pub fn tanh_grad_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// Row-wise softmax over a `rows × cols` row-major buffer, in place.
/// Uses the max-subtraction trick for stability.
pub fn softmax_rows_inplace(x: &mut [f32], cols: usize) {
    debug_assert!(cols > 0 && x.len().is_multiple_of(cols));
    for row in x.chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise log-softmax, in place.
pub fn log_softmax_rows_inplace(x: &mut [f32], cols: usize) {
    debug_assert!(cols > 0 && x.len().is_multiple_of(cols));
    for row in x.chunks_exact_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
}

/// Index of the maximum element of a row (first on ties).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Adds a bias vector to every row of a `rows × cols` buffer.
/// Only the first `active` bias components are used — the sliced path.
pub fn add_bias_rows(x: &mut [f32], bias: &[f32], cols: usize, active: usize) {
    debug_assert!(active <= cols && active <= bias.len());
    for row in x.chunks_exact_mut(cols) {
        for (v, &b) in row[..active].iter_mut().zip(&bias[..active]) {
            *v += b;
        }
    }
}

/// Column-sums of a `rows × cols` buffer into `out[..cols]` (accumulating).
/// This is the bias gradient.
pub fn sum_rows_into(x: &[f32], cols: usize, out: &mut [f32]) {
    debug_assert!(x.len().is_multiple_of(cols) && out.len() >= cols);
    for row in x.chunks_exact(cols) {
        for (o, &v) in out[..cols].iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// Mean and (population) variance of a slice using a single pass with f64
/// accumulators.
pub fn mean_var(x: &[f32]) -> (f32, f32) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let n = x.len() as f64;
    let mut sum = 0.0f64;
    let mut sq = 0.0f64;
    for &v in x {
        sum += v as f64;
        sq += (v as f64) * (v as f64);
    }
    let mean = sum / n;
    let var = (sq / n - mean * mean).max(0.0);
    (mean as f32, var as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_pair() {
        let mut x = vec![-1.0, 0.0, 2.0];
        let input = x.clone();
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        let mut dy = vec![1.0, 1.0, 1.0];
        relu_backward_inplace(&mut dy, &input);
        assert_eq!(dy, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        let s = sigmoid(0.3);
        assert!((sigmoid_grad_from_output(s) - s * (1.0 - s)).abs() < 1e-7);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0];
        softmax_rows_inplace(&mut x, 3);
        let s0: f32 = x[..3].iter().sum();
        let s1: f32 = x[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(x[2] > x[1] && x[1] > x[0]);
        assert!((x[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x0 = vec![0.5, -1.0, 2.0, 0.0];
        let mut ls = x0.clone();
        log_softmax_rows_inplace(&mut ls, 4);
        let mut sm = x0.clone();
        softmax_rows_inplace(&mut sm, 4);
        for (a, b) in ls.iter().zip(sm.iter()) {
            assert!((a.exp() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 0.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn bias_ops_respect_active_prefix() {
        let mut x = vec![0.0; 6]; // 2 rows x 3 cols
        add_bias_rows(&mut x, &[1.0, 2.0, 3.0], 3, 2);
        assert_eq!(x, vec![1.0, 2.0, 0.0, 1.0, 2.0, 0.0]);
        let mut out = vec![0.0; 3];
        sum_rows_into(&x, 3, &mut out);
        assert_eq!(out, vec![2.0, 4.0, 0.0]);
    }

    #[test]
    fn mean_var_matches_definition() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-6);
        assert!((v - 1.25).abs() < 1e-6);
        assert_eq!(mean_var(&[]), (0.0, 0.0));
    }
}
