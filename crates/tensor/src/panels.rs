//! Persistent pre-packed GEMM panels for slice-aware weights.
//!
//! [`crate::matmul::gemm`] packs its operands on every call; for a serving
//! engine that holds weights fixed and only moves the slice rate, that means
//! re-gathering the same `op(B)` strips (a strided, cache-hostile walk for
//! the `Trans::Yes` dense-layer case) thousands of times per second. The
//! types here pack a weight matrix **once**, in exactly the strip layout the
//! micro-kernel consumes, and expose ranged GEMM entry points that compute
//! an arbitrary contiguous column (or row) range against an arbitrary
//! contiguous `k` range — the shapes a per-group prefix forward needs.
//!
//! # Layout
//!
//! The packed buffer is segmented by `KC` block along `k`. Block `p` holds
//! rows `[p·KC, p·KC + kc)` of `op(B)` as `n.div_ceil(NR)` strips of `NR`
//! columns, each strip `kc`-major ([`PackedB`]); [`PackedA`] is the mirror
//! image with `MR`-row strips for a persistent left operand. Strip
//! membership is **absolute**: column `j` always lives in strip `j / NR` at
//! lane `j % NR`, regardless of which range a caller later requests, so the
//! value computed for an output element is independent of the requested
//! range boundaries.
//!
//! # Determinism
//!
//! For fixed `(m, k0, k1, n0, n1)` the blocking, packing and accumulation
//! order of [`gemm_packed_b`] / [`gemm_packed_a`] are pure functions of
//! those bounds (k splits at absolute multiples of `KC`, tiles at absolute
//! multiples of `NR`/`MR`). Two calls that cover the same element with the
//! same `k` range produce bitwise-identical contributions — the foundation
//! of the anytime prefix-refine path in `ms-nn`.

use crate::matmul::{
    micro_kernel_range, pack_a, pack_a_into, pack_b, pack_b_into, with_pack_bufs, Trans, KC, MC,
    MR, NC, NR,
};

/// A persistently packed `k×n` right-hand operand `op(B)`.
#[derive(Debug, Default, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    block_offsets: Vec<usize>,
    buf: Vec<f32>,
    valid: bool,
}

/// A persistently packed `m×k` left-hand operand `op(A)`.
#[derive(Debug, Default, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    block_offsets: Vec<usize>,
    buf: Vec<f32>,
    valid: bool,
}

impl PackedB {
    /// An empty (invalid) panel set; call [`PackedB::pack`] before use.
    pub fn new() -> Self {
        PackedB::default()
    }

    /// Whether the panels reflect the last packed weight values.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Marks the panels stale (weights may have changed); the next `pack`
    /// reuses the buffers, so re-validation allocates nothing at steady
    /// state.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Packed `op(B)` row count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packed `op(B)` column count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Packs the full `k×n` `op(B)` from `b` (leading dimension `ldb`,
    /// transposed per `trans_b`). Grow-only: repacking the same shape reuses
    /// the buffer.
    pub fn pack(&mut self, trans_b: Trans, b: &[f32], ldb: usize, k: usize, n: usize) {
        assert!(k > 0 && n > 0, "cannot pack an empty {k}x{n} operand");
        let strips = n.div_ceil(NR);
        let blocks = k.div_ceil(KC);
        self.block_offsets.clear();
        let mut total = 0;
        for p in 0..blocks {
            let kc = KC.min(k - p * KC);
            self.block_offsets.push(total);
            total += strips * kc * NR;
        }
        self.buf.clear();
        self.buf.resize(total, 0.0);
        for p in 0..blocks {
            let pc = p * KC;
            let kc = KC.min(k - pc);
            let off = self.block_offsets[p];
            pack_b_into(
                trans_b,
                b,
                ldb,
                pc,
                kc,
                0,
                n,
                &mut self.buf[off..off + strips * kc * NR],
            );
        }
        self.k = k;
        self.n = n;
        self.valid = true;
    }
}

impl PackedA {
    /// An empty (invalid) panel set; call [`PackedA::pack`] before use.
    pub fn new() -> Self {
        PackedA::default()
    }

    /// Whether the panels reflect the last packed weight values.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Marks the panels stale (weights may have changed).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Packed `op(A)` row count `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Packed `op(A)` column count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Packs the full `m×k` `op(A)` from `a` (leading dimension `lda`,
    /// transposed per `trans_a`). Grow-only.
    pub fn pack(&mut self, trans_a: Trans, a: &[f32], lda: usize, m: usize, k: usize) {
        assert!(m > 0 && k > 0, "cannot pack an empty {m}x{k} operand");
        let strips = m.div_ceil(MR);
        let blocks = k.div_ceil(KC);
        self.block_offsets.clear();
        let mut total = 0;
        for p in 0..blocks {
            let kc = KC.min(k - p * KC);
            self.block_offsets.push(total);
            total += strips * kc * MR;
        }
        self.buf.clear();
        self.buf.resize(total, 0.0);
        for p in 0..blocks {
            let pc = p * KC;
            let kc = KC.min(k - pc);
            let off = self.block_offsets[p];
            pack_a_into(
                trans_a,
                a,
                lda,
                0,
                m,
                pc,
                kc,
                &mut self.buf[off..off + strips * kc * MR],
            );
        }
        self.m = m;
        self.k = k;
        self.valid = true;
    }
}

/// `C[0..m, n0..n1) = alpha · A[:, k0..k1) · op(B)[k0..k1, n0..n1) + beta · C`
/// with `op(B)` prepacked.
///
/// `a` is indexed by **absolute** `k`: element `(i, p)` lives at
/// `a[i * lda + p]` for `p ∈ [k0, k1)`. `c` holds only the requested column
/// window: element `(i, j)` lives at `c[i * ldc + (j - n0)]`. The `A` side
/// is packed per call into the shared thread-local buffers (it is the
/// activation, different every call); `B` is read straight from the panels.
///
/// The per-call `m·n·k` small-problem dispatch of [`crate::matmul::gemm`] is
/// deliberately absent: every call takes the packed path, so an output
/// element's accumulation order depends only on its own `(k0, k1)` range —
/// never on how large the enclosing call happened to be.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_b(
    m: usize,
    k0: usize,
    k1: usize,
    n0: usize,
    n1: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    pb: &PackedB,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(pb.valid, "gemm_packed_b on invalid panels");
    assert!(k0 <= k1 && k1 <= pb.k, "k range {k0}..{k1} vs packed {}", pb.k);
    assert!(n0 <= n1 && n1 <= pb.n, "col range {n0}..{n1} vs packed {}", pb.n);
    if m == 0 {
        return;
    }
    let ncols = n1 - n0;
    debug_assert!(ldc >= ncols.max(1) && c.len() >= (m - 1) * ldc + ncols);
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(m) {
            for v in &mut row[..ncols] {
                *v *= beta;
            }
        }
    }
    if k0 == k1 || ncols == 0 || alpha == 0.0 {
        return;
    }
    debug_assert!(lda >= 1 && a.len() >= (m - 1) * lda + k1);

    let _span = ms_telemetry::span!("gemm.panel_b");
    let t_lo = n0 / NR;
    let t_hi = (n1 - 1) / NR;
    with_pack_bufs(|apack, _| {
        // k splits at absolute multiples of KC, so a range's block structure
        // is a function of (k0, k1) alone.
        let mut pc = k0;
        while pc < k1 {
            let block = pc / KC;
            let bstart = block * KC;
            let block_kc = KC.min(pb.k - bstart);
            let kc = (bstart + block_kc).min(k1) - pc;
            let rib = pc - bstart; // row offset inside the packed block
            let boff = pb.block_offsets[block];
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let mc_strips = mc.div_ceil(MR);
                pack_a(Trans::No, a, lda, ic, mc, pc, kc, apack);
                for t in t_lo..=t_hi {
                    let sj0 = n0.max(t * NR) - t * NR;
                    let sj1 = n1.min(t * NR + NR) - t * NR;
                    let bp = &pb.buf[boff + t * block_kc * NR + rib * NR..][..kc * NR];
                    for ir in 0..mc_strips {
                        let mr = MR.min(mc - ir * MR);
                        let c_off = (ic + ir * MR) * ldc + t * NR + sj0 - n0;
                        let ap = &apack[ir * kc * MR..(ir + 1) * kc * MR];
                        micro_kernel_range(kc, alpha, ap, bp, c, c_off, ldc, 0, mr, sj0, sj1);
                    }
                }
            }
            pc += kc;
        }
    });
}

/// `C[m0..m1, 0..n) = alpha · op(A)[m0..m1, k0..k1) · B[k0..k1, :] + beta · C`
/// with `op(A)` prepacked.
///
/// `b` is indexed by absolute `k` (`b[p * ldb + j]` for `p ∈ [k0, k1)`); `c`
/// holds only the requested row window (`c[(i - m0) * ldc + j]`). The `B`
/// side is packed per call (for convolution it is the fresh im2col matrix).
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_a(
    m0: usize,
    m1: usize,
    n: usize,
    k0: usize,
    k1: usize,
    alpha: f32,
    pa: &PackedA,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(pa.valid, "gemm_packed_a on invalid panels");
    assert!(k0 <= k1 && k1 <= pa.k, "k range {k0}..{k1} vs packed {}", pa.k);
    assert!(m0 <= m1 && m1 <= pa.m, "row range {m0}..{m1} vs packed {}", pa.m);
    let mrows = m1 - m0;
    if mrows == 0 {
        return;
    }
    debug_assert!(ldc >= n.max(1) && c.len() >= (mrows - 1) * ldc + n);
    if beta != 1.0 {
        for row in c.chunks_mut(ldc).take(mrows) {
            for v in &mut row[..n] {
                *v *= beta;
            }
        }
    }
    if k0 == k1 || n == 0 || alpha == 0.0 {
        return;
    }
    debug_assert!(ldb >= n.max(1) && b.len() >= (k1 - 1) * ldb + n);

    let _span = ms_telemetry::span!("gemm.panel_a");
    let s_lo = m0 / MR;
    let s_hi = (m1 - 1) / MR;
    with_pack_bufs(|_, bpack| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let nc_strips = nc.div_ceil(NR);
            let mut pc = k0;
            while pc < k1 {
                let block = pc / KC;
                let bstart = block * KC;
                let block_kc = KC.min(pa.k - bstart);
                let kc = (bstart + block_kc).min(k1) - pc;
                let rib = pc - bstart;
                let boff = pa.block_offsets[block];
                pack_b(Trans::No, b, ldb, pc, kc, jc, nc, bpack);
                for s in s_lo..=s_hi {
                    let si0 = m0.max(s * MR) - s * MR;
                    let si1 = m1.min(s * MR + MR) - s * MR;
                    let ap = &pa.buf[boff + s * block_kc * MR + rib * MR..][..kc * MR];
                    for jr in 0..nc_strips {
                        let nr = NR.min(nc - jr * NR);
                        let bp = &bpack[jr * kc * NR..(jr + 1) * kc * NR];
                        let c_off = (s * MR + si0 - m0) * ldc + jc + jr * NR;
                        micro_kernel_range(kc, alpha, ap, bp, c, c_off, ldc, si0, si1, 0, nr);
                    }
                }
                pc += kc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::gemm_reference;
    use crate::SeededRng;

    fn filled(rng: &mut SeededRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn reference_range_b(
        m: usize,
        (k0, k1): (usize, usize),
        (n0, n1): (usize, usize),
        alpha: f32,
        a: &[f32],
        lda: usize,
        bt: &[f32], // op(B) stored k×n row-major
        n_full: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
    ) {
        for i in 0..m {
            for j in n0..n1 {
                let mut acc = 0.0f64;
                for p in k0..k1 {
                    acc += a[i * lda + p] as f64 * bt[p * n_full + j] as f64;
                }
                let cv = &mut c[i * ldc + (j - n0)];
                *cv = (beta as f64 * *cv as f64 + alpha as f64 * acc) as f32;
            }
        }
    }

    /// Ranged panel GEMM agrees with an f64 reference over random ranges,
    /// both transpose packings, and edge (non-multiple) shapes.
    #[test]
    fn packed_b_matches_reference_over_ranges() {
        let mut rng = SeededRng::new(41);
        for &(m, k, n) in &[(1usize, 7usize, 5usize), (6, 16, 16), (13, 33, 29), (64, 300, 270)] {
            // op(B) as k×n (Trans::No) and its transposed storage n×k.
            let bt = filled(&mut rng, k * n);
            let b_trans: Vec<f32> = (0..n * k).map(|i| bt[(i % k) * n + i / k]).collect();
            let a = filled(&mut rng, m * k);
            for trans in [Trans::No, Trans::Yes] {
                let mut pb = PackedB::new();
                match trans {
                    Trans::No => pb.pack(Trans::No, &bt, n, k, n),
                    Trans::Yes => pb.pack(Trans::Yes, &b_trans, k, k, n),
                }
                for case in 0..8 {
                    let k0 = rng.uniform(0.0, k as f32) as usize % k;
                    let k1 = k0 + 1 + (rng.uniform(0.0, (k - k0) as f32) as usize).min(k - k0 - 1);
                    let n0 = rng.uniform(0.0, n as f32) as usize % n;
                    let n1 = n0 + 1 + (rng.uniform(0.0, (n - n0) as f32) as usize).min(n - n0 - 1);
                    let (alpha, beta) = if case % 2 == 0 { (1.0, 0.0) } else { (1.7, 1.0) };
                    let ldc = (n1 - n0) + (case % 3);
                    let mut c = filled(&mut rng, m * ldc);
                    let mut want = c.clone();
                    gemm_packed_b(m, k0, k1, n0, n1, alpha, &a, k, &pb, beta, &mut c, ldc);
                    reference_range_b(
                        m,
                        (k0, k1),
                        (n0, n1),
                        alpha,
                        &a,
                        k,
                        &bt,
                        n,
                        beta,
                        &mut want,
                        ldc,
                    );
                    for (got, want) in c.iter().zip(&want) {
                        assert!(
                            (got - want).abs() <= 2e-4 * want.abs().max(1.0),
                            "m={m} k={k0}..{k1} n={n0}..{n1}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    /// Two half-range calls produce bitwise the same bytes as one covering
    /// call when the split is at any column boundary — the refine guarantee.
    #[test]
    fn packed_b_column_split_is_bitwise_invariant() {
        let mut rng = SeededRng::new(42);
        let (m, k, n) = (9usize, 70usize, 45usize);
        let w = filled(&mut rng, n * k); // n×k storage, used Trans::Yes
        let a = filled(&mut rng, m * k);
        let mut pb = PackedB::new();
        pb.pack(Trans::Yes, &w, k, k, n);
        let mut whole = vec![0.0f32; m * n];
        gemm_packed_b(m, 0, k, 0, n, 1.3, &a, k, &pb, 0.0, &mut whole, n);
        for split in [1, 7, 16, 17, 32, 44] {
            let mut parts = vec![0.0f32; m * n];
            gemm_packed_b(m, 0, k, 0, split, 1.3, &a, k, &pb, 0.0, &mut parts, n);
            // Second call writes its own window; stitch via offset slice.
            let mut tail = vec![0.0f32; m * (n - split)];
            gemm_packed_b(m, 0, k, split, n, 1.3, &a, k, &pb, 0.0, &mut tail, n - split);
            for i in 0..m {
                parts[i * n + split..(i + 1) * n]
                    .copy_from_slice(&tail[i * (n - split)..(i + 1) * (n - split)]);
            }
            assert_eq!(
                whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parts.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "split at {split} changed bits"
            );
        }
    }

    /// Same k range ⇒ same bits, regardless of where previous calls stopped:
    /// k splits at absolute KC multiples.
    #[test]
    fn packed_b_k_prefix_accumulation_is_canonical() {
        let mut rng = SeededRng::new(43);
        let (m, k, n) = (4usize, 2 * KC + 37, 24usize);
        let w = filled(&mut rng, n * k);
        let a = filled(&mut rng, m * k);
        let mut pb = PackedB::new();
        pb.pack(Trans::Yes, &w, k, k, n);
        // One shot over [0, k) vs two k-chunks [0, c) + [c, k) accumulated.
        let mut whole = vec![0.0f32; m * n];
        gemm_packed_b(m, 0, k, 0, n, 1.0, &a, k, &pb, 0.0, &mut whole, n);
        for cut in [KC, 2 * KC] {
            // Cuts at KC boundaries preserve the block structure exactly.
            let mut two = vec![0.0f32; m * n];
            gemm_packed_b(m, 0, cut, 0, n, 1.0, &a, k, &pb, 0.0, &mut two, n);
            gemm_packed_b(m, cut, k, 0, n, 1.0, &a, k, &pb, 1.0, &mut two, n);
            assert_eq!(
                whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                two.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "k cut at {cut} changed bits"
            );
        }
    }

    #[test]
    fn packed_a_matches_reference_over_row_ranges() {
        let mut rng = SeededRng::new(44);
        for &(m, k, n) in &[(5usize, 9usize, 8usize), (16, 40, 33), (70, 260, 50)] {
            let a = filled(&mut rng, m * k);
            let b = filled(&mut rng, k * n);
            let mut pa = PackedA::new();
            pa.pack(Trans::No, &a, k, m, k);
            for _ in 0..6 {
                let m0 = rng.uniform(0.0, m as f32) as usize % m;
                let m1 = m0 + 1 + (rng.uniform(0.0, (m - m0) as f32) as usize).min(m - m0 - 1);
                let k1 = 1 + (rng.uniform(0.0, k as f32) as usize).min(k - 1);
                let mut c = vec![0.0f32; (m1 - m0) * n];
                gemm_packed_a(m0, m1, n, 0, k1, 1.0, &pa, &b, n, 0.0, &mut c, n);
                let mut want = vec![0.0f32; m * n];
                gemm_reference(
                    Trans::No,
                    Trans::No,
                    m,
                    n,
                    k1,
                    1.0,
                    &a,
                    k,
                    &b,
                    n,
                    0.0,
                    &mut want,
                    n,
                );
                for i in m0..m1 {
                    for j in 0..n {
                        let got = c[(i - m0) * n + j];
                        let w = want[i * n + j];
                        assert!(
                            (got - w).abs() <= 2e-4 * w.abs().max(1.0),
                            "rows {m0}..{m1} k1={k1} at ({i},{j}): {got} vs {w}"
                        );
                    }
                }
            }
        }
    }

    /// Row-split calls agree bitwise with one covering call (the conv
    /// per-output-group decomposition).
    #[test]
    fn packed_a_row_split_is_bitwise_invariant() {
        let mut rng = SeededRng::new(45);
        let (m, k, n) = (31usize, 90usize, 40usize);
        let a = filled(&mut rng, m * k);
        let b = filled(&mut rng, k * n);
        let mut pa = PackedA::new();
        pa.pack(Trans::No, &a, k, m, k);
        let mut whole = vec![0.0f32; m * n];
        gemm_packed_a(0, m, n, 0, k, 1.0, &pa, &b, n, 0.0, &mut whole, n);
        for split in [1, 5, 6, 12, 30] {
            let mut parts = vec![0.0f32; m * n];
            gemm_packed_a(0, split, n, 0, k, 1.0, &pa, &b, n, 0.0, &mut parts, n);
            gemm_packed_a(
                split,
                m,
                n,
                0,
                k,
                1.0,
                &pa,
                &b,
                n,
                0.0,
                &mut parts[split * n..],
                n,
            );
            assert_eq!(
                whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parts.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row split at {split} changed bits"
            );
        }
    }

    #[test]
    fn repack_reuses_capacity() {
        let mut rng = SeededRng::new(46);
        let w = filled(&mut rng, 64 * 48);
        let mut pb = PackedB::new();
        pb.pack(Trans::Yes, &w, 48, 48, 64);
        let cap = pb.buf.capacity();
        pb.invalidate();
        assert!(!pb.is_valid());
        pb.pack(Trans::Yes, &w, 48, 48, 64);
        assert!(pb.is_valid());
        assert_eq!(pb.buf.capacity(), cap, "repack must not grow the buffer");
        assert_eq!((pb.k(), pb.n()), (48, 64));
    }
}
