//! Thread-local recycling pool for `f32` buffers.
//!
//! Layer forwards and backwards produce output tensors every call. Without
//! reuse, each call heap-allocates those outputs, and the steady-state cost
//! of Algorithm-1 multi-subnet training is dominated by allocator traffic
//! for large activations. The pool closes that loop: a tensor that is no
//! longer needed is [`release`]d back to the thread's free list, and the
//! next [`acquire`] of a compatible size reuses its storage instead of
//! allocating.
//!
//! Design points:
//!
//! - **Thread-local, lock-free.** Each thread owns its free list; buffers
//!   never migrate between threads, so no synchronisation is needed.
//! - **Best-fit with bounded slack.** `acquire(len)` picks the smallest
//!   free buffer whose capacity is `>= len` and at most `2 * len`, so a
//!   tiny request cannot pin a huge buffer.
//! - **Bounded.** At most [`MAX_POOLED`] buffers are retained; releasing
//!   into a full pool drops the smallest entry (large activations are the
//!   expensive ones to reallocate).
//! - **Instrumented.** Hit/miss counters let tests assert that a warmed-up
//!   forward pass is served entirely from the pool.
//!
//! Returned buffers are zero-filled to `len` — `acquire` is a drop-in
//! replacement for `vec![0.0; len]`.

use std::cell::RefCell;

/// Maximum number of buffers retained per thread.
pub const MAX_POOLED: usize = 64;

/// Pool traffic counters for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served by reusing a pooled buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh storage.
    pub misses: u64,
    /// Releases dropped because the pool was full.
    pub evictions: u64,
}

struct Pool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool {
        free: Vec::new(),
        stats: PoolStats::default(),
    });
}

/// Fetches a zero-filled buffer of exactly `len` elements, reusing pooled
/// storage when a suitable buffer is available.
pub fn acquire(len: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in p.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && cap <= len.saturating_mul(2).max(len) {
                match best {
                    Some((_, best_cap)) if best_cap <= cap => {}
                    _ => best = Some((i, cap)),
                }
                if cap == len {
                    break;
                }
            }
        }
        match best {
            Some((i, _)) => {
                p.stats.hits += 1;
                let mut buf = p.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                p.stats.misses += 1;
                vec![0.0; len]
            }
        }
    })
}

/// Returns a buffer to the pool for later reuse. Zero-capacity buffers are
/// dropped. When the pool is full, the smallest retained buffer is evicted
/// to make room if the newcomer is larger (otherwise the newcomer is
/// dropped).
pub fn release(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.free.len() >= MAX_POOLED {
            let (min_i, min_cap) = p
                .free
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, c)| c)
                .expect("pool is full, so non-empty");
            p.stats.evictions += 1;
            if buf.capacity() > min_cap {
                p.free.swap_remove(min_i);
            } else {
                return;
            }
        }
        p.free.push(buf);
    });
}

/// Snapshot of this thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets this thread's counters (the free list is kept).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Drops every pooled buffer and resets counters. Mainly for tests that
/// need a cold pool.
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.stats = PoolStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip_hits() {
        clear();
        let a = acquire(128);
        assert_eq!(a.len(), 128);
        assert!(a.iter().all(|&v| v == 0.0));
        release(a);
        let b = acquire(128);
        assert_eq!(stats().hits, 1);
        assert_eq!(stats().misses, 1);
        release(b);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        clear();
        let mut a = acquire(16);
        a.iter_mut().for_each(|v| *v = 7.0);
        release(a);
        let b = acquire(16);
        assert!(b.iter().all(|&v| v == 0.0));
        release(b);
    }

    #[test]
    fn oversized_buffers_are_not_matched() {
        clear();
        release(vec![0.0; 1000]);
        let small = acquire(8);
        // 1000 > 2 * 8, so the big buffer must not have been handed out.
        assert_eq!(stats().misses, 1);
        assert_eq!(stats().hits, 0);
        release(small);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        clear();
        release(Vec::with_capacity(100));
        release(Vec::with_capacity(60));
        let got = acquire(50);
        assert_eq!(stats().hits, 1);
        assert!(got.capacity() >= 50 && got.capacity() <= 100);
        release(got);
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        for _ in 0..(MAX_POOLED + 10) {
            release(vec![0.0; 4]);
        }
        assert!(stats().evictions >= 10);
        clear();
    }
}
