//! Thread-local recycling pool for `f32` buffers.
//!
//! Layer forwards and backwards produce output tensors every call. Without
//! reuse, each call heap-allocates those outputs, and the steady-state cost
//! of Algorithm-1 multi-subnet training is dominated by allocator traffic
//! for large activations. The pool closes that loop: a tensor that is no
//! longer needed is [`release`]d back to the thread's free list, and the
//! next [`acquire`] of a compatible size reuses its storage instead of
//! allocating.
//!
//! Design points:
//!
//! - **Thread-local, lock-free.** Each thread owns its free list; buffers
//!   never migrate between threads, so no synchronisation is needed.
//! - **Best-fit with bounded slack.** `acquire(len)` picks the smallest
//!   free buffer whose capacity is `>= len` and at most `2 * len`, so a
//!   tiny request cannot pin a huge buffer.
//! - **Bounded.** At most [`MAX_POOLED`] buffers are retained; releasing
//!   into a full pool drops the smallest entry (large activations are the
//!   expensive ones to reallocate).
//! - **Instrumented.** Hit/miss counters let tests assert that a warmed-up
//!   forward pass is served entirely from the pool.
//!
//! Returned buffers are zero-filled to `len` — `acquire` is a drop-in
//! replacement for `vec![0.0; len]`.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Maximum number of buffers retained per thread.
pub const MAX_POOLED: usize = 64;

/// Process-wide pool counters on the telemetry registry. The per-thread
/// [`PoolStats`] stay authoritative for tests (they are exact per thread);
/// these aggregate across every thread so `engine_smoke`, `bench_snapshot`
/// and the Prometheus dumps can see total pool traffic from outside the
/// crate.
struct PoolMetrics {
    hits: ms_telemetry::Counter,
    misses: ms_telemetry::Counter,
    evictions: ms_telemetry::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = ms_telemetry::global();
        PoolMetrics {
            hits: reg.counter(
                "tensor_pool_hits_total",
                "buffer-pool acquisitions served from pooled storage",
            ),
            misses: reg.counter(
                "tensor_pool_misses_total",
                "buffer-pool acquisitions that allocated fresh storage",
            ),
            evictions: reg.counter(
                "tensor_pool_evictions_total",
                "buffer-pool releases dropped because the pool was full",
            ),
        }
    })
}

/// Cross-thread totals `(hits, misses, evictions)` from the telemetry
/// registry — the externally visible counterpart of the thread-local
/// [`stats`].
pub fn global_stats() -> (u64, u64, u64) {
    let m = pool_metrics();
    (m.hits.get(), m.misses.get(), m.evictions.get())
}

/// Pool traffic counters for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served by reusing a pooled buffer.
    pub hits: u64,
    /// Acquisitions that had to allocate fresh storage.
    pub misses: u64,
    /// Releases dropped because the pool was full.
    pub evictions: u64,
}

/// How many pool events a thread accumulates locally before publishing the
/// deltas to the global telemetry counters. The pool sits on the per-request
/// hot path of the serving engine; a global `fetch_add` per acquire would
/// put every worker thread on the same contended cache lines, so traffic is
/// batched and the registry series lag the thread-local truth by at most
/// `FLUSH_EVERY - 1` events per live thread (exact on thread exit).
const FLUSH_EVERY: u64 = 64;

struct Pool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
    /// Deltas not yet published to the global registry counters.
    pending: PoolStats,
}

impl Pool {
    fn new() -> Pool {
        // Touch the registry cells now, while this thread is first setting
        // its pool up: registration allocates (name strings, the cell), and
        // deferring it to the first threshold flush would put that one-off
        // allocation inside a steady-state region the zero-alloc tests
        // measure.
        let _ = pool_metrics();
        Pool {
            free: Vec::new(),
            stats: PoolStats::default(),
            pending: PoolStats::default(),
        }
    }

    fn flush_pending(&mut self) {
        let m = pool_metrics();
        if self.pending.hits > 0 {
            m.hits.add(self.pending.hits);
        }
        if self.pending.misses > 0 {
            m.misses.add(self.pending.misses);
        }
        if self.pending.evictions > 0 {
            m.evictions.add(self.pending.evictions);
        }
        self.pending = PoolStats::default();
    }

    fn note_event(&mut self) {
        if self.pending.hits + self.pending.misses + self.pending.evictions >= FLUSH_EVERY {
            self.flush_pending();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.flush_pending();
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Fetches a zero-filled buffer of exactly `len` elements, reusing pooled
/// storage when a suitable buffer is available.
pub fn acquire(len: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in p.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && cap <= len.saturating_mul(2).max(len) {
                match best {
                    Some((_, best_cap)) if best_cap <= cap => {}
                    _ => best = Some((i, cap)),
                }
                if cap == len {
                    break;
                }
            }
        }
        match best {
            Some((i, _)) => {
                p.stats.hits += 1;
                p.pending.hits += 1;
                p.note_event();
                let mut buf = p.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                p.stats.misses += 1;
                p.pending.misses += 1;
                p.note_event();
                vec![0.0; len]
            }
        }
    })
}

/// Returns a buffer to the pool for later reuse. Zero-capacity buffers are
/// dropped. When the pool is full, the smallest retained buffer is evicted
/// to make room if the newcomer is larger (otherwise the newcomer is
/// dropped).
pub fn release(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.free.len() >= MAX_POOLED {
            let (min_i, min_cap) = p
                .free
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, c)| c)
                .expect("pool is full, so non-empty");
            p.stats.evictions += 1;
            p.pending.evictions += 1;
            p.note_event();
            if buf.capacity() > min_cap {
                p.free.swap_remove(min_i);
            } else {
                return;
            }
        }
        p.free.push(buf);
    });
}

/// Snapshot of this thread's pool counters. Also publishes this thread's
/// pending deltas to the global registry counters, so a thread that reads
/// its own stats sees the registry caught up with itself.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.flush_pending();
        p.stats
    })
}

/// Resets this thread's counters (the free list is kept).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = PoolStats::default());
}

/// Drops every pooled buffer and resets counters. Mainly for tests that
/// need a cold pool.
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.stats = PoolStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip_hits() {
        clear();
        let a = acquire(128);
        assert_eq!(a.len(), 128);
        assert!(a.iter().all(|&v| v == 0.0));
        release(a);
        let b = acquire(128);
        assert_eq!(stats().hits, 1);
        assert_eq!(stats().misses, 1);
        release(b);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        clear();
        let mut a = acquire(16);
        a.iter_mut().for_each(|v| *v = 7.0);
        release(a);
        let b = acquire(16);
        assert!(b.iter().all(|&v| v == 0.0));
        release(b);
    }

    #[test]
    fn oversized_buffers_are_not_matched() {
        clear();
        release(vec![0.0; 1000]);
        let small = acquire(8);
        // 1000 > 2 * 8, so the big buffer must not have been handed out.
        assert_eq!(stats().misses, 1);
        assert_eq!(stats().hits, 0);
        release(small);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        clear();
        release(Vec::with_capacity(100));
        release(Vec::with_capacity(60));
        let got = acquire(50);
        assert_eq!(stats().hits, 1);
        assert!(got.capacity() >= 50 && got.capacity() <= 100);
        release(got);
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        for _ in 0..(MAX_POOLED + 10) {
            release(vec![0.0; 4]);
        }
        assert!(stats().evictions >= 10);
        clear();
    }
}
