//! Seeded random number generation.
//!
//! Every stochastic component in the system (weight init, data synthesis,
//! slice-rate scheduling, dropout, workload arrival) draws from a
//! [`SeededRng`] so that experiments are bit-reproducible run to run.

use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic RNG with the sampling helpers the codebase needs.
///
/// Wraps ChaCha8 (fast, portable, identical streams on every platform —
/// unlike `StdRng`, whose algorithm is unspecified across `rand` versions).
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: ChaCha8Rng,
}

impl SeededRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream. Used to give each subsystem
    /// (data, init, scheduler, …) its own stream so adding draws to one does
    /// not perturb the others.
    pub fn fork(&mut self, label: u64) -> SeededRng {
        let seed = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller; two uniforms per call, second
    /// discarded for simplicity — init and noise paths are not hot).
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples an index from unnormalised non-negative weights.
    ///
    /// # Panics
    /// If `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: zero total weight");
        let mut u = self.inner.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples from any `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.inner)
    }

    /// Raw u64 draw (for deriving seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption_order() {
        let mut a = SeededRng::new(5);
        let mut fork1 = a.fork(1);
        let x = fork1.next_u64();
        let mut b = SeededRng::new(5);
        let mut fork1b = b.fork(1);
        assert_eq!(x, fork1b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SeededRng::new(10);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(1.0, 2.0)).collect();
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SeededRng::new(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::new(12);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // overwhelmingly likely
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn weighted_index_rejects_empty() {
        SeededRng::new(1).weighted_index(&[]);
    }
}
