//! Shape and index arithmetic for row-major dense tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum tensor rank. The largest layout in this codebase is
/// `[batch, channels, height, width]` (rank 4); 6 leaves headroom.
pub const MAX_RANK: usize = 6;

/// The shape of a dense row-major tensor.
///
/// Dimensions are stored inline (no heap allocation): shapes are created on
/// every layer forward, and the zero-allocation steady-state contract of the
/// layer stack (see `ms-nn`) requires that constructing, cloning and
/// reshaping them never touches the allocator. Unused slots are kept at
/// zero so derived equality/hashing stay consistent.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from dimensions. Zero-sized dimensions are allowed
    /// (they denote empty tensors) but are rare in practice.
    ///
    /// # Panics
    /// If the rank exceeds [`MAX_RANK`].
    pub fn new(dims: impl Into<Shape>) -> Self {
        dims.into()
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape {
            dims: [0; MAX_RANK],
            rank: 0,
        }
    }

    fn from_slice(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut s = Shape::scalar();
        s.dims[..dims.len()].copy_from_slice(dims);
        s.rank = dims.len() as u8;
        s
    }

    /// The dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Size of one axis.
    ///
    /// # Panics
    /// If `axis >= rank`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    /// In debug builds, if the index rank or any coordinate is out of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(self.dims()).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of range {d} at axis {i}");
            let _ = i;
            off += ix * stride;
            stride *= d;
        }
        off
    }

    /// Validates that this shape can reinterpret a buffer of `len` elements.
    pub fn check_len(&self, len: usize) -> Result<()> {
        if self.numel() == len {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                expected: format!("{} elements for shape {self}", self.numel()),
                got: format!("{len} elements"),
            })
        }
    }

    /// Returns a new shape with `axis` replaced by `size`.
    pub fn with_dim(&self, axis: usize, size: usize) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut s = self.clone();
        s.dims[axis] = size;
        Ok(s)
    }

    /// Returns a new shape with the last axis replaced by `size` (the common
    /// "same leading dims, new feature width" case in layer forwards).
    ///
    /// # Panics
    /// If the shape is rank 0.
    pub fn with_last_dim(&self, size: usize) -> Self {
        assert!(self.rank() > 0, "with_last_dim on scalar shape");
        let mut s = self.clone();
        s.dims[self.rank() - 1] = size;
        s
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

// Hand-written serde: the wire format is the same flat sequence of
// dimensions the previous `Shape(Vec<usize>)` representation produced.
impl Serialize for Shape {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.dims()
                .iter()
                .map(|&d| serde::Value::UInt(d as u64))
                .collect(),
        )
    }
}

impl Deserialize for Shape {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let dims = Vec::<usize>::from_value(v)?;
        if dims.len() > MAX_RANK {
            return Err(serde::Error(format!(
                "shape rank {} exceeds MAX_RANK {MAX_RANK}",
                dims.len()
            )));
        }
        Ok(Shape::from_slice(&dims))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::from_slice(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_slice(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_slice(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::from([5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn check_len_validates() {
        let s = Shape::from([2, 3]);
        assert!(s.check_len(6).is_ok());
        assert!(s.check_len(5).is_err());
    }

    #[test]
    fn with_dim_replaces_axis() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.with_dim(1, 7).unwrap(), Shape::from([2, 7]));
        assert!(s.with_dim(2, 7).is_err());
        assert_eq!(s.with_last_dim(9), Shape::from([2, 9]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn equality_ignores_unused_slots() {
        let a = Shape::from([2, 3]);
        let b = Shape::from(vec![2usize, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shape::from([2, 3, 1]));
    }

    #[test]
    fn serde_roundtrip_is_flat_seq() {
        let s = Shape::from([4, 2, 8]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "[4,2,8]");
        let back: Shape = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "MAX_RANK")]
    fn rank_overflow_panics() {
        let _ = Shape::from([1, 1, 1, 1, 1, 1, 1]);
    }
}
