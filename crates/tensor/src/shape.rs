//! Shape and index arithmetic for row-major dense tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense row-major tensor.
///
/// Ranks in this codebase are small (≤ 4: `[batch, channels, height, width]`
/// is the largest layout used), so dimensions are kept in a plain `Vec` and
/// strides are derived on demand.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimensions. Zero-sized dimensions are allowed
    /// (they denote empty tensors) but are rare in practice.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of one axis.
    ///
    /// # Panics
    /// If `axis >= rank`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    /// In debug builds, if the index rank or any coordinate is out of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(self.0.iter()).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of range {d} at axis {i}");
            let _ = i;
            off += ix * stride;
            stride *= d;
        }
        off
    }

    /// Validates that this shape can reinterpret a buffer of `len` elements.
    pub fn check_len(&self, len: usize) -> Result<()> {
        if self.numel() == len {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                expected: format!("{} elements for shape {self}", self.numel()),
                got: format!("{len} elements"),
            })
        }
    }

    /// Returns a new shape with `axis` replaced by `size`.
    pub fn with_dim(&self, axis: usize, size: usize) -> Result<Self> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.0.clone();
        dims[axis] = size;
        Ok(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::from([5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn check_len_validates() {
        let s = Shape::from([2, 3]);
        assert!(s.check_len(6).is_ok());
        assert!(s.check_len(5).is_err());
    }

    #[test]
    fn with_dim_replaces_axis() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.with_dim(1, 7).unwrap(), Shape::from([2, 7]));
        assert!(s.with_dim(2, 7).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
