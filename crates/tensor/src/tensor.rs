//! The dense row-major `f32` tensor.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, owned, row-major `f32` tensor.
///
/// This is the only storage type in the system. "Views" needed by the sliced
/// kernels are expressed as `(data, leading-dimension)` pairs at the kernel
/// level (see [`crate::matmul`]) rather than as a separate view type, which
/// keeps lifetimes out of layer code while still allowing sub-block
/// multiplication without copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// Zero-filled tensor whose storage comes from the thread-local buffer
    /// pool (see [`crate::pool`]). Pair with [`Tensor::recycle`] so the
    /// buffer is returned once the tensor is spent; in steady state this
    /// makes repeated forward/backward passes allocation-free.
    pub fn pooled_zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = crate::pool::acquire(shape.numel());
        Tensor { shape, data }
    }

    /// Pool-backed copy of `self`. Same contract as [`Tensor::pooled_zeros`].
    pub fn pooled_clone(&self) -> Self {
        let mut data = crate::pool::acquire(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Consumes the tensor, returning its buffer to the thread-local pool.
    ///
    /// Safe to call on any tensor (pool-backed or not); the storage simply
    /// becomes available for the next [`Tensor::pooled_zeros`] /
    /// [`Tensor::pooled_clone`] of a compatible size.
    pub fn recycle(self) {
        crate::pool::release(self.data);
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// Builds a tensor from an existing buffer, validating the element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        shape.check_len(data.len())?;
        Ok(Tensor { shape, data })
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::from([data.len()]),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-index (debug-checked).
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element access by multi-index (debug-checked).
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        shape.check_len(self.data.len())?;
        self.shape = shape;
        Ok(self)
    }

    /// Like [`Tensor::reshape`] but borrows: returns a clone under the new
    /// shape. Used where the original must stay alive (e.g. backward caches).
    pub fn reshaped(&self, shape: impl Into<Shape>) -> Result<Self> {
        self.clone().reshape(shape)
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    /// If shapes differ (debug) or lengths differ (release).
    pub fn add_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha` elementwise.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Elementwise sum of two tensors.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Elementwise product of two tensors.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        debug_assert_eq!(self.shape, other.shape, "mul shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute element; 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Copies one "row" (leading-axis slab) from `src` into this tensor's
    /// row `dst_row`. Both tensors must have the same trailing-dim product.
    pub fn copy_row_from(&mut self, dst_row: usize, src: &Tensor, src_row: usize) -> Result<()> {
        if self.shape.rank() == 0 || src.shape.rank() == 0 {
            return Err(TensorError::Incompatible(
                "copy_row_from requires rank >= 1".into(),
            ));
        }
        let dst_stride = self.numel() / self.shape.dim(0);
        let src_stride = src.numel() / src.shape.dim(0);
        if dst_stride != src_stride {
            return Err(TensorError::ShapeMismatch {
                expected: format!("row stride {dst_stride}"),
                got: format!("row stride {src_stride}"),
            });
        }
        if dst_row >= self.shape.dim(0) || src_row >= src.shape.dim(0) {
            return Err(TensorError::Incompatible(format!(
                "row out of range: dst {dst_row}/{}, src {src_row}/{}",
                self.shape.dim(0),
                src.shape.dim(0)
            )));
        }
        let dst = &mut self.data[dst_row * dst_stride..(dst_row + 1) * dst_stride];
        let src = &src.data[src_row * src_stride..(src_row + 1) * src_stride];
        dst.copy_from_slice(src);
        Ok(())
    }

    /// Returns the contiguous slab for leading-axis index `row`.
    pub fn row(&self, row: usize) -> &[f32] {
        let stride = self.numel() / self.shape.dim(0);
        &self.data[row * stride..(row + 1) * stride]
    }

    /// Mutable slab for leading-axis index `row`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        let stride = self.numel() / self.shape.dim(0);
        &mut self.data[row * stride..(row + 1) * stride]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.at(&[0, 0]), 1.);
        assert_eq!(t.at(&[1, 2]), 6.);
        assert_eq!(t.numel(), 6);
        assert!(Tensor::from_vec([2, 3], vec![1.0; 5]).is_err());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([3, 2]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::zeros([2, 3]);
        assert!(t.clone().reshape([3, 2]).is_ok());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33.]);
        assert_eq!(a.mul(&b).data(), &[10., 40., 90.]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[21., 42., 63.]);
        c.scale(0.5);
        assert_eq!(c.data(), &[10.5, 21., 31.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1., -4., 3.]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.sq_norm(), 26.0);
    }

    #[test]
    fn rows() {
        let mut t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1), &[4., 5., 6.]);
        t.row_mut(0)[2] = 9.0;
        assert_eq!(t.at(&[0, 2]), 9.0);
    }

    #[test]
    fn copy_row_from_moves_slabs() {
        let src = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let mut dst = Tensor::zeros([3, 3]);
        dst.copy_row_from(2, &src, 1).unwrap();
        assert_eq!(dst.row(2), &[4., 5., 6.]);
        let bad = Tensor::zeros([2, 4]);
        assert!(dst.clone().copy_row_from(0, &bad, 0).is_err());
        assert!(dst.copy_row_from(5, &src, 0).is_err());
    }

    #[test]
    fn pooled_tensors_roundtrip_through_pool() {
        crate::pool::clear();
        let t = Tensor::pooled_zeros([4, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        t.recycle();
        let src = Tensor::from_slice(&[1., 2., 3.]);
        let c = src.pooled_clone();
        assert_eq!(c.data(), src.data());
        c.recycle();
        // The 16-element buffer must have been reused for nothing yet, but a
        // same-sized acquire now hits.
        let again = Tensor::pooled_zeros([16]);
        assert!(crate::pool::stats().hits >= 1);
        again.recycle();
    }

    #[test]
    fn map_variants() {
        let t = Tensor::from_slice(&[1., 2.]);
        assert_eq!(t.map(|v| v * v).data(), &[1., 4.]);
        let mut t = t;
        t.map_inplace(|v| -v);
        assert_eq!(t.data(), &[-1., -2.]);
    }
}
