//! Property-based tests for the tensor kernels.

use ms_tensor::conv::{col2im, im2col, ConvGeom};
use ms_tensor::matmul::{dot, gemm, gemm_reference, Trans};
use ms_tensor::ops;
use ms_tensor::{SeededRng, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM is linear in alpha: C(2α) - C(0) == 2·(C(α) - C(0)).
    #[test]
    fn gemm_linear_in_alpha(
        m in 1usize..8, n in 1usize..8, k in 1usize..8,
        alpha in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let run = |al: f32| {
            let mut c = vec![0.0f32; m * n];
            gemm(Trans::No, Trans::No, m, n, k, al, &a, k, &b, n, 0.0, &mut c, n);
            c
        };
        let c1 = run(alpha);
        let c2 = run(2.0 * alpha);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((2.0 * x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ: computing with swapped transposes matches.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..8, n in 1usize..8, k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        // C = A·B  (m×n)
        let mut c = vec![0.0f32; m * n];
        gemm(Trans::No, Trans::No, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
        // D = Bᵀ·Aᵀ (n×m), via the transpose flags on the stored matrices.
        let mut d = vec![0.0f32; n * m];
        gemm(Trans::Yes, Trans::Yes, n, m, k, 1.0, &b, n, &a, k, 0.0, &mut d, m);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c[i * n + j] - d[j * m + i]).abs() < 1e-4);
            }
        }
    }

    /// The packed register-blocked GEMM agrees with the f64-accumulating
    /// reference over all four transpose cases, sizes straddling the
    /// MR/NR/KC block edges, padded leading dimensions (`ld > cols`) and
    /// degenerate alpha/beta scalings — and never touches the row padding.
    #[test]
    fn gemm_matches_reference(
        m in proptest::sample::select(vec![1usize, 5, 6, 7, 12, 13, 17]),
        n in proptest::sample::select(vec![1usize, 15, 16, 17, 31, 33]),
        k in proptest::sample::select(vec![1usize, 2, 8, 255, 256, 257]),
        ta in any::<bool>(), tb in any::<bool>(),
        pad_a in 0usize..3, pad_b in 0usize..3, pad_c in 0usize..3,
        alpha in proptest::sample::select(vec![0.0f32, 0.5, 1.0]),
        beta in proptest::sample::select(vec![0.0f32, 0.5, 1.0]),
        seed in any::<u64>(),
    ) {
        let trans_a = if ta { Trans::Yes } else { Trans::No };
        let trans_b = if tb { Trans::Yes } else { Trans::No };
        // Stored dimensions of A and B under the transpose flags.
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let (br, bc) = if tb { (n, k) } else { (k, n) };
        let (lda, ldb, ldc) = (ac + pad_a, bc + pad_b, n + pad_c);
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..ar * lda).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..br * ldb).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let c0: Vec<f32> = (0..m * ldc).map(|_| rng.uniform(-1.0, 1.0)).collect();

        let mut c = c0.clone();
        gemm(trans_a, trans_b, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
        let mut want = c0.clone();
        gemm_reference(trans_a, trans_b, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut want, ldc);

        for i in 0..m {
            for j in 0..n {
                let (x, y) = (c[i * ldc + j], want[i * ldc + j]);
                let tol = 1e-4 * y.abs().max(1.0);
                prop_assert!(
                    (x - y).abs() <= tol,
                    "C[{i},{j}] = {x} vs reference {y} (m={m} n={n} k={k} \
                     ta={ta} tb={tb} alpha={alpha} beta={beta})"
                );
            }
            for j in n..ldc {
                prop_assert_eq!(c[i * ldc + j], c0[i * ldc + j], "padding clobbered");
            }
        }
    }

    /// dot is symmetric and matches the simple sum.
    #[test]
    fn dot_symmetric(len in 0usize..64, seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let a: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-5);
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    /// im2col/col2im adjointness for arbitrary geometry:
    /// <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn conv_lowering_adjoint(
        h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        c in 1usize..4,
        seed in any::<u64>(),
    ) {
        let geom = ConvGeom { h, w, kh: k, kw: k, stride, pad };
        prop_assume!(geom.is_valid());
        let mut rng = SeededRng::new(seed);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let col_len = c * k * k * geom.out_len();
        let y: Vec<f32> = (0..col_len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut col = vec![0.0f32; col_len];
        im2col(&x, c, &geom, &mut col);
        let lhs: f64 = col.iter().zip(&y).map(|(a, b)| (a * b) as f64).sum();
        let mut back = vec![0.0f32; x.len()];
        col2im(&y, c, &geom, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Shape offset is a bijection onto 0..numel.
    #[test]
    fn shape_offsets_are_bijective(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(dims.clone());
        let mut seen = vec![false; shape.numel()];
        let mut index = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&index);
            prop_assert!(!seen[off], "offset collision at {index:?}");
            seen[off] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 { break; }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < dims[axis] { break; }
                index[axis] = 0;
                if axis == 0 { break; }
            }
            if index.iter().all(|&v| v == 0) { break; }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// log-softmax exp-normalises to softmax for arbitrary rows.
    #[test]
    fn log_softmax_consistency(
        vals in proptest::collection::vec(-30.0f32..30.0, 2..20),
    ) {
        let cols = vals.len();
        let mut ls = vals.clone();
        ops::log_softmax_rows_inplace(&mut ls, cols);
        let mut sm = vals;
        ops::softmax_rows_inplace(&mut sm, cols);
        for (a, b) in ls.iter().zip(&sm) {
            prop_assert!((a.exp() - b).abs() < 1e-4);
        }
    }

    /// mean_var matches the two-pass definition.
    #[test]
    fn mean_var_matches_two_pass(
        vals in proptest::collection::vec(-10.0f32..10.0, 1..50),
    ) {
        let (m, v) = ops::mean_var(&vals);
        let n = vals.len() as f64;
        let mean: f64 = vals.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = vals.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((m as f64 - mean).abs() < 1e-4);
        prop_assert!((v as f64 - var).abs() < 1e-2 * (1.0 + var));
    }

    /// Tensor axpy/scale algebra: (x + αy)·β == βx + αβ·y.
    #[test]
    fn tensor_axpy_scale_algebra(
        len in 1usize..32,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::from_vec([len], (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()).unwrap();
        let y = Tensor::from_vec([len], (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()).unwrap();
        let mut lhs = x.clone();
        lhs.axpy(alpha, &y);
        lhs.scale(beta);
        let mut rhs = x.clone();
        rhs.scale(beta);
        rhs.axpy(alpha * beta, &y);
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }
}
