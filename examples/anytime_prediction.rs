//! Anytime prediction (paper §2.1 / §3): a model trained with slicing can
//! answer *whenever the deadline fires* — run the cheapest subnet first,
//! then keep refining with wider subnets while time remains, reusing the
//! shared computation conceptually (Eq. 9 does it exactly for dense layers;
//! see `ms_core::residual`).
//!
//! Run with: `cargo run --release --example anytime_prediction`

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::prelude::*;
use modelslicing::slicing::inference::ElasticEngine;
use modelslicing::slicing::residual::upgrade_linear;
use modelslicing::slicing::trainer::Batch;

fn main() {
    let mut rng = SeededRng::new(9);

    // Train a sliceable MLP on a toy 3-class problem.
    let make_batch = |rng: &mut SeededRng, n: usize| -> Batch {
        let mut xs = Vec::with_capacity(n * 4);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let cls = rng.below(3);
            for d in 0..4 {
                let centre = (cls as f32 - 1.0) * (d as f32 + 1.0) * 0.3;
                xs.push(centre + rng.normal(0.0, 0.4));
            }
            ys.push(cls);
        }
        Batch {
            x: Tensor::from_vec([n, 4], xs).expect("batch"),
            y: ys,
        }
    };
    let train: Vec<Batch> = (0..24).map(|_| make_batch(&mut rng, 32)).collect();

    let mut model = Mlp::new(
        &MlpConfig {
            input_dim: 4,
            hidden_dims: vec![32, 32],
            num_classes: 3,
            groups: 4,
            dropout: 0.0,
            input_rescale: true,
        },
        &mut rng,
    );
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::Static, rates.clone(), &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    for _ in 0..30 {
        trainer.train_epoch(&mut model, &train);
    }

    // Anytime prediction: cheapest answer first, refine while time remains.
    let engine = ElasticEngine::new(CostModel::measure(&mut model, rates));
    let query = Tensor::from_vec([1, 4], vec![0.4, 0.7, 1.0, 1.4]).expect("query");
    println!("anytime predictions (cheapest → most refined):");
    for (rate, logits) in engine.anytime_predictions(&mut model, &query) {
        let probs: Vec<f32> = {
            let mut p = logits.clone();
            modelslicing::tensor::ops::softmax_rows_inplace(p.data_mut(), 3);
            p.data().to_vec()
        };
        println!(
            "  rate {:.2} ({:>6} MACs): class {} (p = {:.3})",
            rate.get(),
            engine.cost().flops_at(rate),
            modelslicing::tensor::ops::argmax(&probs),
            probs.iter().cloned().fold(0.0f32, f32::max),
        );
    }

    // Eq. 9 in action on a single dense layer: upgrading the cached
    // half-width pre-activation to full width costs fewer MACs than
    // re-evaluating, and is exact.
    let w = modelslicing::tensor::init::kaiming_normal([64, 64], 64, &mut rng);
    let x = modelslicing::tensor::init::kaiming_normal([1, 64], 64, &mut rng);
    let mut y_half = Tensor::zeros([1, 32]);
    modelslicing::tensor::matmul::gemm(
        modelslicing::tensor::matmul::Trans::No,
        modelslicing::tensor::matmul::Trans::Yes,
        1,
        32,
        32,
        1.0,
        x.data(),
        64,
        w.data(),
        64,
        0.0,
        y_half.data_mut(),
        32,
    );
    let up = upgrade_linear(&w, &x, &y_half, 32, 64, 32, 64);
    println!(
        "\nEq.-9 incremental upgrade 32→64 wide: {} MACs vs {} from scratch ({}% saved)",
        up.flops_spent,
        up.flops_full,
        100 * (up.flops_full - up.flops_spent) / up.flops_full
    );
}
