//! Cascade ranking with one sliced model (paper §4.2, Table 5).
//!
//! Builds a 4-stage ranking pipeline where every stage is the *same*
//! trained model at an increasing slice rate, and contrasts its aggregate
//! recall with a cascade of independently trained fixed models over the
//! same synthetic items.
//!
//! Run with: `cargo run --release --example cascade_ranking`

use modelslicing::baselines::cascade::cascade_metrics;
use modelslicing::data::synth_images::{ImageDataset, ImageDatasetConfig};
use modelslicing::models::vgg::{Vgg, VggConfig};
use modelslicing::prelude::*;
use modelslicing::slicing::trainer::Batch;

fn batches_from(ds: &ImageDataset) -> (Vec<Batch>, Vec<usize>) {
    let (x, y) = ds.test_tensor();
    (
        vec![Batch {
            x,
            y: y.clone(),
        }],
        y,
    )
}

fn train(model: &mut dyn Layer, ds: &ImageDataset, kind: SchedulerKind, seed: u64) {
    let mut rng = SeededRng::new(seed);
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(kind, rates, &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    let mut batcher =
        modelslicing::data::loader::ImageBatcher::new(ds, 64, true, &mut rng);
    for _ in 0..15 {
        let batches: Vec<Batch> = batcher
            .epoch()
            .into_iter()
            .map(|(x, y)| Batch { x, y })
            .collect();
        trainer.train_epoch(model, &batches);
    }
}

fn predictions(model: &mut dyn Layer, batches: &[Batch], rate: SliceRate) -> Vec<usize> {
    model.set_slice_rate(rate);
    let mut out = Vec::new();
    for b in batches {
        let logits = model.forward(&b.x, Mode::Infer);
        let k = *logits.dims().last().expect("rank");
        for row in 0..b.y.len() {
            out.push(modelslicing::tensor::ops::argmax(
                &logits.data()[row * k..(row + 1) * k],
            ));
        }
    }
    model.set_slice_rate(SliceRate::FULL);
    out
}

fn main() {
    let ds = ImageDataset::generate(ImageDatasetConfig {
        classes: 6,
        channels: 3,
        size: 12,
        train: 600,
        test: 300,
        noise: 0.5,
        distractor: 0.4,
        seed: 3,
    });
    let cfg = VggConfig {
        in_channels: 3,
        image_size: 12,
        stages: vec![(1, 8), (1, 16), (1, 32)],
        num_classes: 6,
        groups: 4,
        width_multiplier: 1.0,
    };
    let (test, labels) = batches_from(&ds);
    let stage_rates = [0.25f32, 0.5, 0.75, 1.0];

    // Pipeline A: one sliced model.
    println!("training the sliced model…");
    let mut rng = SeededRng::new(1);
    let mut sliced = Vgg::new(&cfg, &mut rng);
    train(&mut sliced, &ds, SchedulerKind::RandomMinMax, 2);
    let sliced_preds: Vec<Vec<usize>> = stage_rates
        .iter()
        .map(|&r| predictions(&mut sliced, &test, SliceRate::new(r)))
        .collect();

    // Pipeline B: independently trained fixed models (different seeds).
    let mut fixed_preds = Vec::new();
    for (i, _) in stage_rates.iter().enumerate() {
        println!("training fixed cascade stage {}…", i + 1);
        let mut rng = SeededRng::new(100 + i as u64);
        let mut m = Vgg::new(&cfg, &mut rng);
        train(&mut m, &ds, SchedulerKind::Fixed(1.0), 200 + i as u64);
        fixed_preds.push(predictions(&mut m, &test, SliceRate::FULL));
    }

    println!("\nstage | sliced prec / agg-recall | cascade prec / agg-recall");
    let a = cascade_metrics(&sliced_preds, &labels);
    let b = cascade_metrics(&fixed_preds, &labels);
    for i in 0..stage_rates.len() {
        println!(
            "  {}   |      {:>5.1}% / {:>5.1}%      |      {:>5.1}% / {:>5.1}%",
            i + 1,
            a[i].precision * 100.0,
            a[i].aggregate_recall * 100.0,
            b[i].precision * 100.0,
            b[i].aggregate_recall * 100.0,
        );
    }
    println!(
        "\nthe sliced pipeline loses {:.1} pts of recall across stages; the \
         conventional cascade loses {:.1} pts — consistency is what cascades buy \
         from model slicing.",
        (a[0].aggregate_recall - a.last().unwrap().aggregate_recall) * 100.0,
        (b[0].aggregate_recall - b.last().unwrap().aggregate_recall) * 100.0,
    );
}
