//! Deployment extraction (paper §3.1): train once with model slicing, then
//! ship a *standalone* narrow model — bit-identical logits, a fraction of
//! the parameters — plus checkpoint save/load round-tripping.
//!
//! Run with: `cargo run --release --example deploy_submodel`

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::nn::checkpoint::Checkpoint;
use modelslicing::prelude::*;
use modelslicing::slicing::deploy::DeploySliced;
use modelslicing::slicing::trainer::Batch;

fn main() {
    let mut rng = SeededRng::new(77);

    // Train a sliceable MLP on a small synthetic task.
    let mut model = Mlp::new(
        &MlpConfig {
            input_dim: 8,
            hidden_dims: vec![48, 48],
            num_classes: 4,
            groups: 4,
            dropout: 0.0,
            input_rescale: true,
        },
        &mut rng,
    );
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::RandomMinMax, rates.clone(), &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    for _ in 0..25 {
        let batches: Vec<Batch> = (0..16)
            .map(|_| {
                let mut xs = Vec::with_capacity(32 * 8);
                let mut ys = Vec::with_capacity(32);
                for _ in 0..32 {
                    let cls = rng.below(4);
                    for d in 0..8 {
                        xs.push((cls as f32 - 1.5) * ((d % 3) as f32 + 0.5) * 0.4
                            + rng.normal(0.0, 0.5));
                    }
                    ys.push(cls);
                }
                Batch {
                    x: Tensor::from_vec([32, 8], xs).expect("batch"),
                    y: ys,
                }
            })
            .collect();
        trainer.train_epoch(&mut model, &batches);
    }

    // Checkpoint the trained parent.
    let dir = std::env::temp_dir().join("modelslicing-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("parent.json");
    Checkpoint::capture(&mut model).save(&path).expect("save");
    println!("checkpointed parent to {}", path.display());

    // Extract standalone deployments at every width.
    let probe = Tensor::from_vec(
        [1, 8],
        vec![0.2, -0.4, 0.9, 0.0, -0.7, 0.3, 0.5, -0.1],
    )
    .expect("probe");
    model.set_slice_rate(SliceRate::FULL);
    let full_params = model.active_param_count();
    println!("\nwidth   params   vs-full   logits-match-parent");
    for r in rates.iter() {
        model.set_slice_rate(r);
        let want = model.forward(&probe, Mode::Infer);
        model.set_slice_rate(SliceRate::FULL);
        let mut small = model.deploy(r);
        let got = small.forward(&probe, Mode::Infer);
        let matches = want
            .data()
            .iter()
            .zip(got.data())
            .all(|(a, b)| (a - b).abs() < 1e-4);
        println!(
            "{:>5.2}  {:>7}   {:>6.1}%   {}",
            r.get(),
            small.active_param_count(),
            100.0 * small.active_param_count() as f64 / full_params as f64,
            if matches { "yes (bit-equivalent)" } else { "NO" },
        );
    }

    // Reload the checkpoint into a fresh parent and verify equivalence.
    let mut fresh = Mlp::new(model.config(), &mut rng);
    Checkpoint::load(&path)
        .expect("load")
        .apply(&mut fresh)
        .expect("apply");
    let a = model.forward(&probe, Mode::Infer);
    let b = fresh.forward(&probe, Mode::Infer);
    assert_eq!(a, b);
    println!("\ncheckpoint reload: logits identical ✓");
    let _ = std::fs::remove_file(&path);
}
