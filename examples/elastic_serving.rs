//! Elastic serving under a bursty workload (paper §4.1).
//!
//! Simulates the paper's deployment story end-to-end: a query stream whose
//! rate spikes 16×, a latency constraint `T`, batches formed every `T/2`,
//! and a controller that picks the slice rate per batch via `n·r²·t ≤ T/2`.
//! Compares against the coarse degradation policies the paper criticises.
//!
//! Run with: `cargo run --release --example elastic_serving`

use modelslicing::serving::controller::{AccuracyTable, Policy};
use modelslicing::serving::simulator::{SimConfig, Simulator};
use modelslicing::serving::workload::{WorkloadConfig, WorkloadTrace};
use modelslicing::slicing::slice_rate::SliceRateList;

fn main() {
    // Accuracy-per-width of a trained sliced model. These are the measured
    // numbers from the fig5_table4 experiment; substitute your own model's
    // sweep in a real deployment (see `crates/experiments`).
    let rates = SliceRateList::paper_cifar();
    let table = AccuracyTable::new(rates, vec![0.9375, 0.9525, 0.9725, 0.9900, 0.9925, 0.9950]);

    // Singles'-Day-style workload: diurnal swing plus 9× flash crowds.
    // Peaks land near the base subnet's capacity (≈ 7× the full model's) —
    // the §4.1 regime where fine-grained degradation shines. Beyond that
    // (say 16× spikes) even the base subnet overflows and an ultra-cheap
    // model swap wins on raw throughput; see tests/serving_sla.rs for that
    // boundary case.
    let trace = WorkloadTrace::generate(&WorkloadConfig {
        ticks: 2000,
        base_rate: 8.0,
        diurnal_amplitude: 2.0,
        diurnal_period: 400,
        spike_prob: 0.004,
        spike_multiplier: 9.0,
        spike_len: 30,
        seed: 7,
    });
    println!(
        "workload: {} queries, volatility {:.1}x",
        trace.total(),
        trace.volatility()
    );

    // Latency constraint 40 ms; full model needs 1 ms per sample.
    let sim = Simulator::new(
        SimConfig {
            t_full: 1e-3,
            latency: 0.04,
        },
        table,
    );

    for (name, policy) in [
        ("fixed full-width model ", Policy::FixedFull),
        ("fixed base-width model ", Policy::FixedBase),
        (
            "swap to cheap model    ",
            Policy::ModelSwap {
                rel_cost: 0.05,
                accuracy: 0.72,
            },
        ),
        ("drop excess candidates ", Policy::DropCandidates),
        ("model slicing (elastic)", Policy::ModelSlicing),
    ] {
        let r = sim.run(policy, &trace);
        println!(
            "{name}: served {:>6}/{:<6} shed {:>5}  eff-accuracy {:>5.1}%  budget-util {:.2}",
            r.served,
            r.arrived,
            r.shed,
            r.mean_accuracy * 100.0,
            r.utilization
        );
    }
}
