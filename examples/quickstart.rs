//! Quickstart: train a small sliceable MLP with Algorithm 1, then serve it
//! at several widths and under an explicit FLOPs budget.
//!
//! Run with: `cargo run --release --example quickstart`

use modelslicing::prelude::*;
use modelslicing::slicing::inference::ElasticEngine;
use modelslicing::slicing::trainer::Batch;

fn main() {
    let mut rng = SeededRng::new(42);

    // A 2-class "two moons"-ish toy problem.
    let make_batch = |rng: &mut SeededRng, n: usize| -> Batch {
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            xs.push(a);
            xs.push(b);
            ys.push(usize::from(a * a + b * b > 0.5));
        }
        Batch {
            x: Tensor::from_vec([n, 2], xs).expect("batch"),
            y: ys,
        }
    };
    let train: Vec<Batch> = (0..32).map(|_| make_batch(&mut rng, 32)).collect();
    let test: Vec<Batch> = (0..8).map(|_| make_batch(&mut rng, 64)).collect();

    // 1. Build a sliceable model: hidden layers divided into 4 width groups.
    let mut model = modelslicing::models::mlp::Mlp::new(
        &modelslicing::models::mlp::MlpConfig {
            input_dim: 2,
            hidden_dims: vec![32, 32],
            num_classes: 2,
            groups: 4,
            dropout: 0.0,
            input_rescale: true,
        },
        &mut rng,
    );

    // 2. Train with Algorithm 1: the scheduler draws a list of slice rates
    //    per iteration; gradients accumulate across the scheduled subnets.
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::RandomMinMax, rates.clone(), &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    for epoch in 0..40 {
        let stats = trainer.train_epoch(&mut model, &train);
        if epoch % 10 == 0 {
            println!("epoch {epoch:>2}: mean subnet loss {:.4}", stats.mean_loss);
        }
    }

    // 3. One model, many widths: evaluate every subnet.
    println!("\naccuracy per slice rate:");
    for r in rates.iter() {
        let (_, acc) = trainer.evaluate(&mut model, &test, r);
        model.set_slice_rate(r);
        println!(
            "  rate {:.2}: accuracy {:.1}%  ({} MACs/sample, {} active params)",
            r.get(),
            acc * 100.0,
            model.flops_per_sample(),
            model.active_param_count()
        );
        model.set_slice_rate(SliceRate::FULL);
    }

    // 4. Budgeted inference (Eq. 3): give the engine a FLOPs budget and let
    //    it pick the widest affordable subnet per query.
    let cost = CostModel::measure(&mut model, rates);
    let engine = ElasticEngine::new(cost);
    let query = Tensor::from_vec([1, 2], vec![0.9, 0.1]).expect("query");
    for budget in [engine.cost().full_flops(), engine.cost().full_flops() / 4] {
        let (logits, used) =
            engine.predict_with_budget(&mut model, &query, FlopsBudget(budget));
        println!(
            "\nbudget {budget} MACs → served at rate {:.2}, logits {:?}",
            used.get(),
            logits.data()
        );
    }
}
