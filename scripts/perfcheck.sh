#!/usr/bin/env bash
# Performance tripwire for the packed-GEMM / zero-allocation work (PR 1)
# and the elastic serving engine (PR 2).
#
# 1. Release build must succeed.
# 2. Kernel benches must run (criterion smoke mode, no timing).
# 3. The zero-allocation instrumented tests must pass in release — layer
#    forwards (ms-nn) and the engine's batched forward path (ms-core).
# 4. The engine smoke must show elastic serving beating every fixed rate
#    on deadline hits under a calibrated flash-crowd trace.
# 5. Hot forward/backward bodies must not reintroduce ad-hoc allocation:
#    `Tensor::zeros(` and `vec![` are banned in the layer hot paths — use
#    `Tensor::pooled_zeros`, `pooled_clone`, `Workspace::take` instead.
#
# Usage: scripts/perfcheck.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build =="
cargo build --release --workspace

echo "== kernel bench smoke =="
cargo bench -p ms-bench --bench kernels -- --test

echo "== zero-allocation instrumented tests =="
cargo test --release -p ms-nn --test zero_alloc
cargo test --release -p ms-core --test zero_alloc_batched

echo "== engine throughput smoke (elastic vs fixed rates) =="
cargo run --release -p ms-bench --bin engine_smoke

echo "== allocation tripwire (hot layer bodies) =="
HOT_FILES=(
    crates/nn/src/linear.rs
    crates/nn/src/conv2d.rs
    crates/nn/src/depthwise.rs
    crates/nn/src/activation.rs
    crates/nn/src/sequential.rs
    crates/nn/src/norm/group_norm.rs
    crates/nn/src/rnn/lstm.rs
    crates/nn/src/rnn/gru.rs
)
fail=0
for f in "${HOT_FILES[@]}"; do
    # Scan only `fn forward(`/`fn backward(` bodies (brace-counted); layer
    # constructors may allocate once, the per-call paths may not.
    if ! awk -v file="$f" '
        /fn (forward|backward)\(/ { infn = 1; depth = 0; seen = 0 }
        infn {
            if ($0 ~ /Tensor::zeros\(|vec!\[/) {
                printf "    %s:%d: %s\n", file, FNR, $0
                bad = 1
            }
            o = gsub(/{/, "{"); c = gsub(/}/, "}")
            depth += o - c
            if (o > 0) seen = 1
            if (seen && depth <= 0) infn = 0
        }
        END { exit bad ? 1 : 0 }
    ' "$f"; then
        echo "ALLOCATION REINTRODUCED in $f (see lines above)"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "perfcheck FAILED: hot paths must use pooled_zeros/pooled_clone/Workspace::take"
    exit 1
fi
echo "perfcheck OK"
