#!/usr/bin/env bash
# Performance tripwire for the packed-GEMM / zero-allocation work (PR 1),
# the elastic serving engine (PR 2), the telemetry stack (PR 3) and the
# anytime prefix-refinement path (PR 6).
#
# 1. Release build must succeed.
# 2. Kernel benches must run (criterion smoke mode, no timing).
# 3. The zero-allocation instrumented tests must pass in release — layer
#    forwards (ms-nn), the engine's batched forward path (ms-core), and
#    the telemetry record path (ms-telemetry, both feature configs).
# 4. `determinism_probe` must print byte-identical fingerprints from a
#    default build and a `--features telemetry-spans` build: the span
#    tracer must not perturb one bit of any numeric path.
# 5. The engine smoke must show elastic serving beating every fixed rate
#    on deadline hits under a calibrated flash-crowd trace, AND always-on
#    registry recording must cost <= 2% throughput (in-process A/B via the
#    telemetry kill switch; MS_TELEMETRY_GATE_PCT overrides the gate). The
#    smoke also dumps Prometheus/JSON snapshots to results/logs/ and the
#    gate numbers to results/BENCH_telemetry_pr3.json. A second run with
#    spans compiled in writes its snapshot alongside for comparison.
# 6. Hot forward/backward bodies must not reintroduce ad-hoc allocation:
#    `Tensor::zeros(` and `vec![` are banned in the layer hot paths — use
#    `Tensor::pooled_zeros`, `pooled_clone`, `Workspace::take` instead.
# 7. The loopback net gate (PR 4): serving the same full-width request
#    stream through the TCP front-end must cost <= 15% throughput vs the
#    in-process engine (MS_NET_GATE_PCT overrides), and `bench_snapshot`
#    records the wire-vs-in-process numbers in results/BENCH_net_pr4.json
#    (alongside the PR 1 kernel snapshot it already writes).
# 8. The flight-recorder gates (PR 5): the request-lifecycle recorder's
#    hot path must not allocate (counting-allocator test in
#    ms-telemetry/tests/zero_alloc_flight.rs), and recording must cost
#    <= 2% engine throughput (interleaved on/off A/B inside
#    `bench_snapshot`, numbers in results/BENCH_trace_pr5.json;
#    MS_TRACE_GATE_PCT overrides — bench_snapshot exits non-zero on a
#    gate failure). The determinism probe in step 4 additionally asserts
#    the recorder is numerically invisible (identical fingerprints with
#    recording on and off).
# 9. The anytime-refinement gates (PR 6): with pre-packed weight panels,
#    walking the {0.25,0.5,0.75,1.0} rate ladder by prefix refinement must
#    be >= 2x faster than recomputing every rung at the 256^3 / 4-group
#    acceptance shape (MS_PREFIX_LADDER_GATE overrides), the network-level
#    refine MAC bill must telescope to *exactly* one full-width pass (hard
#    assert, no tolerance), and the refine ladder's wall clock must stay
#    within 10% of a single direct full pass (MS_PREFIX_GATE_PCT
#    overrides). `bench_snapshot` runs both A/Bs, writes the numbers to
#    results/BENCH_prefix_pr6.json and exits non-zero on a gate failure.
#    The refine hot path must also be allocation-free in steady state
#    (ms-core/tests/zero_alloc_refine.rs) and `forward_prefix` bodies are
#    covered by the step-6 allocation tripwire.
# 10. The reactor front-end gates (PR 7): the fault-injecting codec
#    harness (crates/net/tests/chaos_codec.rs) must prove the incremental
#    FrameDecoder agrees byte-for-byte with the buffer decoder under
#    fragmentation, bit flips, and mid-frame EOF; the reactor loopback
#    suite (slow-loris reap, output-backlog shedding, drain ordering) and
#    the 16-client soak must pass; and `bench_snapshot` A/Bs the reactor's
#    wire overhead against the recorded thread-per-connection PR 4
#    baseline, writing results/BENCH_reactor_pr7.json (MS_NET_GATE_PCT
#    overrides the gate). The 10k-connection soak is manual — see
#    tests/net_loopback.rs: cargo test --release --test net_loopback --
#    --ignored ten_thousand.
# 11. The time-series/SLO gates (PR 8): the warm sampler tick, every
#    windowed query, and a transition-free SLO evaluation must be
#    allocation-free (ms-telemetry/tests/zero_alloc_timeseries.rs); the
#    windowed counter-rate and histogram-delta math must match brute-force
#    recomputes (ms-telemetry/tests/timeseries_props.rs); and
#    `bench_snapshot` A/Bs engine throughput with the background Sampler
#    running at a 25 ms cadence (40x the server's 1 s default) plus
#    per-tick SLO burn-rate evaluation vs stopped, writing
#    results/BENCH_slo_pr8.json and exiting non-zero if the overhead
#    exceeds 2% (MS_TS_GATE_PCT overrides).
# 12. The elastic-cluster gates (PR 9): the autoscaler policy property
#    tests (ms-cluster/tests/autoscaler_props.rs — scale-out monotone in
#    sustained burn, scale-in only after the full idle hold, no flapping
#    across the hysteresis band) must pass; the root e2e
#    (tests/cluster_elastic.rs) must show the autoscaled fleet of real
#    shard_server processes strictly beating every fixed fleet of 1..=3
#    shards on client-judged deadline hits per core-second with zero lost
#    correlation ids, and a shard SIGKILLed mid-run must fail over (every
#    orphan settled as an explicit Failover shed) and restart under a
#    bumped generation. `bench_snapshot` (step above) additionally runs
#    the shortened elastic-vs-fixed A/B, writes
#    results/BENCH_cluster_pr9.json and exits non-zero unless the elastic
#    fleet's efficiency is >= MS_CLUSTER_GATE (default 1.0) times the
#    best fixed fleet's. Both the e2e and the bench need the release
#    shard_server binary, which step 1's `cargo build --release
#    --workspace` provides.
#
# Usage: scripts/perfcheck.sh   (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build =="
cargo build --release --workspace

echo "== kernel bench smoke =="
cargo bench -p ms-bench --bench kernels -- --test

echo "== zero-allocation instrumented tests =="
cargo test --release -p ms-nn --test zero_alloc
cargo test --release -p ms-core --test zero_alloc_batched
cargo test --release -p ms-core --test zero_alloc_refine
cargo test --release -p ms-telemetry --test zero_alloc
cargo test --release -p ms-telemetry --test zero_alloc --features telemetry-spans
cargo test --release -p ms-telemetry --test zero_alloc_flight
cargo test --release -p ms-telemetry --test zero_alloc_timeseries

echo "== cross-build determinism (spans on vs off) =="
cargo run --release -q -p ms-bench --bin determinism_probe > /tmp/ms_probe_default.txt
cargo run --release -q -p ms-bench --features telemetry-spans \
    --bin determinism_probe > /tmp/ms_probe_spans.txt
if ! diff /tmp/ms_probe_default.txt /tmp/ms_probe_spans.txt; then
    echo "perfcheck FAILED: span-instrumented build changed inference output bits"
    exit 1
fi
echo "probe fingerprints identical across builds"

echo "== engine throughput smoke (elastic vs fixed, telemetry overhead gate) =="
cargo run --release -p ms-bench --bin engine_smoke

echo "== engine smoke with span tracing compiled in =="
MS_TELEMETRY_BENCH_OUT=results/BENCH_telemetry_pr3_spans.json \
    cargo run --release -p ms-bench --features telemetry-spans --bin engine_smoke

echo "== loopback net gate (wire path vs in-process) =="
cargo run --release -p ms-bench --bin engine_smoke -- --net

echo "== reactor front-end: chaos codec harness + loopback suite + soak =="
cargo test --release -p ms-net --test chaos_codec
cargo test --release -p ms-net --test loopback_smoke
cargo test --release -p ms-net --test soak -- --ignored

echo "== windowed time-series property tests =="
cargo test --release -p ms-telemetry --test timeseries_props

echo "== elastic cluster: autoscaler properties + e2e (elastic beats fixed, kill-failover) =="
cargo test --release -p ms-cluster --test autoscaler_props
cargo test --release --test cluster_elastic

echo "== bench snapshots (kernels + net + reactor A/B + trace gate + prefix-refine + sampler + cluster gates) =="
cargo run --release -p ms-bench --bin bench_snapshot > /dev/null

echo "== allocation tripwire (hot layer bodies) =="
HOT_FILES=(
    crates/nn/src/linear.rs
    crates/nn/src/conv2d.rs
    crates/nn/src/depthwise.rs
    crates/nn/src/activation.rs
    crates/nn/src/sequential.rs
    crates/nn/src/norm/group_norm.rs
    crates/nn/src/rnn/lstm.rs
    crates/nn/src/rnn/gru.rs
)
fail=0
for f in "${HOT_FILES[@]}"; do
    # Scan only `fn forward(`/`fn forward_prefix(`/`fn backward(` bodies
    # (brace-counted); layer constructors may allocate once, the per-call
    # paths may not.
    if ! awk -v file="$f" '
        /fn (forward|forward_prefix|backward)\(/ { infn = 1; depth = 0; seen = 0 }
        infn {
            if ($0 ~ /Tensor::zeros\(|vec!\[/) {
                printf "    %s:%d: %s\n", file, FNR, $0
                bad = 1
            }
            o = gsub(/{/, "{"); c = gsub(/}/, "}")
            depth += o - c
            if (o > 0) seen = 1
            if (seen && depth <= 0) infn = 0
        }
        END { exit bad ? 1 : 0 }
    ' "$f"; then
        echo "ALLOCATION REINTRODUCED in $f (see lines above)"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "perfcheck FAILED: hot paths must use pooled_zeros/pooled_clone/Workspace::take"
    exit 1
fi
echo "perfcheck OK"
