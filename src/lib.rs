//! # modelslicing
//!
//! A Rust reproduction of *“Model Slicing for Supporting Complex Analytics
//! with Elastic Inference Cost and Resource Constraints”* (Cai, Chen, Ooi,
//! Gao — PVLDB 13(2), VLDB 2019).
//!
//! Model slicing trains **one** neural network that is executable at many
//! widths: each layer's components are partitioned into ordered groups, every
//! forward pass activates a prefix of those groups selected by a single
//! scalar *slice rate* `r`, and training schedules `r` stochastically so all
//! subnets learn jointly. At inference time the width — and therefore the
//! (roughly quadratic-in-`r`) compute cost — is chosen per query to meet a
//! latency or FLOPs budget.
//!
//! This facade crate re-exports the subsystem crates:
//!
//! - [`tensor`] — dense f32 tensors, GEMM with leading dimensions, im2col
//!   convolution, pooling, initialisers ([`ms_tensor`]).
//! - [`nn`] — sliceable layers with hand-derived backprop, losses,
//!   optimisers ([`ms_nn`]).
//! - [`slicing`] — the paper's contribution: slice plans, scheduling schemes,
//!   the Algorithm-1 trainer, the cost model and the elastic inference engine
//!   ([`ms_core`]).
//! - [`models`] — VGG-style CNNs, pre-activation ResNets, the NNLM language
//!   model, the multi-classifier baseline ([`ms_models`]).
//! - [`baselines`] — fixed-width ensembles, Network Slimming, SkipNet,
//!   SlimmableNet, cascades ([`ms_baselines`]).
//! - [`data`] — synthetic image/text datasets, loaders and metrics
//!   ([`ms_data`]).
//! - [`serving`] — the Section-4 applications: dynamic-workload serving and
//!   cascade ranking ([`ms_serving`]).
//! - [`net`] — serving over TCP: the length-prefixed wire protocol, the
//!   thread-per-connection front-end, blocking/pipelined clients and the
//!   deadline-aware multi-engine router ([`ms_net`]).
//! - [`telemetry`] — zero-cost observability: the global metrics registry,
//!   feature-gated span tracing and Prometheus/JSON exposition
//!   ([`ms_telemetry`]).
//! - [`cluster`] — the elastic fleet: shard supervisor over `shard_server`
//!   processes, SLO-burn-driven autoscaler (scale-out → slice-down → shed),
//!   hard-failover front router and open-loop load generator
//!   ([`ms_cluster`]).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use modelslicing::prelude::*;
//!
//! // A sliceable MLP with 4 width groups per hidden layer.
//! let mut rng = SeededRng::new(0);
//! let mut model = ms_models::mlp::Mlp::new(&ms_models::mlp::MlpConfig {
//!     input_dim: 8,
//!     hidden_dims: vec![32, 32],
//!     num_classes: 4,
//!     groups: 4,
//!     dropout: 0.0,
//!     input_rescale: true,
//! }, &mut rng);
//!
//! // Slice it to half width and run a forward pass.
//! model.set_slice_rate(SliceRate::new(0.5));
//! let x = Tensor::zeros([2, 8]);
//! let logits = model.forward(&x, Mode::Infer);
//! assert_eq!(logits.dims(), &[2, 4]);
//! ```

pub use ms_baselines as baselines;
pub use ms_cluster as cluster;
pub use ms_core as slicing;
pub use ms_data as data;
pub use ms_models as models;
pub use ms_net as net;
pub use ms_nn as nn;
pub use ms_serving as serving;
pub use ms_telemetry as telemetry;
pub use ms_tensor as tensor;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use ms_core::cost::{CostModel, FlopsBudget};
    pub use ms_core::scheduler::{Scheduler, SchedulerKind};
    pub use ms_core::slice_rate::{SliceRate, SliceRateList};
    pub use ms_core::trainer::{Trainer, TrainerConfig};
    pub use ms_nn::layer::{Layer, Mode, Network};
    pub use ms_tensor::{SeededRng, Shape, Tensor};
}
