//! Checkpoint round-trip regression: a trained sliced model serialised to
//! JSON and reloaded into a freshly initialised network must produce
//! bitwise-equal logits at every candidate slice rate.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::nn::checkpoint::Checkpoint;
use modelslicing::prelude::*;
use modelslicing::slicing::trainer::Batch;

fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: 10,
        hidden_dims: vec![24, 24],
        num_classes: 3,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

/// A few Algorithm-1 steps on synthetic data, enough to move every
/// parameter well away from its initialisation.
fn train_briefly(model: &mut Mlp, rng: &mut SeededRng) {
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::Static, rates, rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    for step in 0..20 {
        let x = Tensor::from_vec(
            [16, 10],
            (0..160).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        )
        .unwrap();
        let y = (0..16).map(|i| (i + step) % 3).collect();
        trainer.step(model, &Batch { x, y });
    }
}

#[test]
fn reloaded_checkpoint_reproduces_logits_at_every_rate() {
    let mut rng = SeededRng::new(31);
    let mut trained = Mlp::new(&mlp_config(), &mut rng);
    train_briefly(&mut trained, &mut rng);

    let path = std::env::temp_dir().join(format!("ms_ckpt_roundtrip_{}.json", std::process::id()));
    Checkpoint::capture(&mut trained)
        .save(&path)
        .expect("save checkpoint");

    // A fresh model from a different seed: every weight starts different.
    let mut reloaded = Mlp::new(&mlp_config(), &mut SeededRng::new(777));
    Checkpoint::load(&path)
        .expect("load checkpoint")
        .apply(&mut reloaded)
        .expect("apply checkpoint");
    let _ = std::fs::remove_file(&path);

    let x = Tensor::from_vec(
        [8, 10],
        (0..80).map(|i| (i as f32 * 0.713).sin()).collect(),
    )
    .unwrap();
    for &r in &[0.25f32, 0.5, 0.75, 1.0] {
        let rate = SliceRate::new(r);
        trained.set_slice_rate(rate);
        reloaded.set_slice_rate(rate);
        let a = trained.forward(&x, Mode::Infer);
        let b = reloaded.forward(&x, Mode::Infer);
        assert_eq!(a, b, "rate {r}: logits diverge after JSON round-trip");
    }
}
