//! End-to-end elastic cluster: real shard *processes*, a real spike, and
//! the headline claim of the cluster control plane — an autoscaled fleet
//! beats every fixed fleet on client-judged deadline hits per
//! core-second, and a shard killed mid-run fails over losslessly.
//!
//! Every shard plans against the same deterministic quadratic latency
//! profile (`t_full = 2 ms` at `T = 20 ms`), so planned capacity per
//! 10 ms window is 5 requests at full width and 80 at the r = 0.25
//! floor — machine-independent numbers the trace is sized against. The
//! spike runs ~228 requests/tick: ~2.9× one shard's floor capacity, so a
//! single shard must shed most of it, three shards absorb it, and the
//! elastic fleet earns its margin by paying for three shards only while
//! the spike lasts.
//!
//! Accounting is absolute: every correlation id ever sent must settle —
//! delivered, shed with a cause, or failover-shed — in every run. `lost`
//! is asserted to be exactly zero everywhere.

use modelslicing::cluster::{
    run_trace, AutoscalerConfig, Cluster, ClusterConfig, LoadgenConfig, LoadgenReport, ShardSpec,
};
use modelslicing::serving::workload::WorkloadTrace;
use std::sync::Mutex;
use std::time::Duration;

/// Wall-clock pacing against real processes: no other test in this
/// binary may compete for the CPU while one runs.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn shard_spec() -> ShardSpec {
    let bin = ShardSpec::discover_bin().expect(
        "shard_server binary not found — build it first (`cargo build --workspace`, \
         or plain `cargo test` which builds workspace bins)",
    );
    ShardSpec::small(bin)
}

fn loadgen_cfg() -> LoadgenConfig {
    LoadgenConfig {
        tick: Duration::from_millis(10),
        deadline_micros: 0, // use each shard's configured 20 ms SLA
        client_deadline: Duration::from_millis(250),
        control_every: 25, // 250 ms control cadence
        settle_timeout: Duration::from_secs(10),
    }
}

/// Calm → spike → calm. 200 calm ticks (2 s) at 3/tick, 350 spike ticks
/// (3.5 s) at 228/tick, 400 calm ticks (4 s) to watch scale-in.
fn spike_trace() -> WorkloadTrace {
    WorkloadTrace::spike(950, 3.0, 76.0, 200, 350, 41)
}

fn autoscaled() -> AutoscalerConfig {
    AutoscalerConfig {
        min_shards: 1,
        max_shards: 3,
        // Judge idleness on queue depth and controller rate: the wire
        // burns are 60 s-window figures and cannot decay inside this
        // test's 4 s post-spike calm.
        idle_burn: f64::INFINITY,
        idle_queue: 8.0,
        r_high: 0.9,
        idle_hold: 4, // 1 s of sustained idle before each retirement
        cooldown: 1,
        ..AutoscalerConfig::default()
    }
}

fn run(cfg: ClusterConfig, label: &str) -> LoadgenReport {
    let mut cluster = Cluster::start(cfg).expect("start cluster");
    let report = run_trace(&mut cluster, &spike_trace(), &loadgen_cfg(), |_, _| {});
    eprintln!(
        "DIAG {label}: sent={} delivered={} hits={} shed={} failover={} lost={} \
         core_s={:.2} peak_shards={} eff={:.1} scale_outs={} scale_ins={}",
        report.sent,
        report.delivered,
        report.deadline_hits,
        report.shed,
        report.failover_shed,
        report.lost,
        report.core_seconds,
        report.peak_shards,
        report.hits_per_core_second(),
        cluster.scale_outs(),
        cluster.scale_ins(),
    );
    assert_eq!(report.lost, 0, "{label}: lost correlation ids");
    assert_eq!(
        report.sent,
        report.delivered + report.shed + report.failover_shed,
        "{label}: every id settles as delivered or explicitly shed"
    );
    report
}

fn compare_fleets() {
    let spec = shard_spec();
    let elastic = run(
        ClusterConfig::new(spec.clone(), autoscaled()),
        "elastic(1..=3)",
    );
    assert_eq!(elastic.peak_shards, 3, "elastic fleet never reached 3 shards");
    let elastic_eff = elastic.hits_per_core_second();
    for n in 1..=3 {
        let fixed = run(ClusterConfig::fixed(spec.clone(), n), &format!("fixed({n})"));
        assert_eq!(fixed.peak_shards, n);
        assert!(
            elastic_eff > fixed.hits_per_core_second(),
            "elastic ({elastic_eff:.1} hits/core-s) must beat fixed({n}) ({:.1})",
            fixed.hits_per_core_second()
        );
    }
}

#[test]
fn elastic_fleet_beats_every_fixed_fleet_on_hits_per_core_second() {
    let _serial = serial();
    // Real processes paced against the wall clock: a scheduler stall can
    // sink one attempt for reasons unrelated to the control plane, so one
    // failed attempt earns one retry. Two failures in a row is real.
    if let Err(e) = std::panic::catch_unwind(compare_fleets) {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic");
        eprintln!("first attempt failed ({msg}); retrying once");
        compare_fleets();
    }
}

fn kill_one_shard() {
    let spec = shard_spec();
    let mut cluster = Cluster::start(ClusterConfig::fixed(spec, 2)).expect("start cluster");
    // Flat 60/tick: ~30/tick/shard forces r = 0.25 serving with one to
    // two windows of queue, so the victim holds orphans when it dies.
    let trace = WorkloadTrace::from_rate_fn(300, 43, |_| 60.0);
    let mut victim = None;
    let report = run_trace(&mut cluster, &trace, &loadgen_cfg(), |c, t| {
        if t == 150 {
            let id = c.serving_ids()[0];
            victim = Some(id);
            c.kill_shard(id).expect("kill shard");
        }
    });
    eprintln!(
        "DIAG kill-failover: sent={} delivered={} hits={} shed={} failover={} lost={} restarts={}",
        report.sent,
        report.delivered,
        report.deadline_hits,
        report.shed,
        report.failover_shed,
        report.lost,
        cluster.restarts(),
    );
    let victim = victim.expect("chaos hook ran");
    // Lossless accounting: every id settled, orphans explicitly shed.
    assert_eq!(report.lost, 0, "lost correlation ids across the kill");
    assert_eq!(report.sent, report.delivered + report.shed + report.failover_shed);
    assert!(
        report.failover_shed >= 1,
        "a shard killed under load must orphan at least one in-flight request"
    );
    // The supervisor restarted the victim under a bumped generation and
    // the fleet is back at strength.
    assert_eq!(cluster.restarts(), 1);
    assert_eq!(cluster.shard_count(), 2);
    assert!(
        cluster
            .supervisor()
            .shards()
            .iter()
            .any(|s| s.id == victim && s.generation == 2),
        "victim shard must be re-spawned as generation 2"
    );
    // Failover is a blip, not an outage: the overwhelming majority of
    // traffic is still delivered on time.
    assert!(
        report.deadline_hits as f64 >= 0.90 * report.sent as f64,
        "hits {} of sent {}",
        report.deadline_hits,
        report.sent
    );
}

#[test]
fn killed_shard_fails_over_and_restarts_losslessly() {
    let _serial = serial();
    if let Err(e) = std::panic::catch_unwind(kill_one_shard) {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic");
        eprintln!("first attempt failed ({msg}); retrying once");
        kill_one_shard();
    }
}
