//! Deployment extraction and Eq.-9 reuse, end to end.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::prelude::*;
use modelslicing::slicing::deploy::DeploySliced;
use modelslicing::slicing::trainer::Batch;

fn trained_mlp(rng: &mut SeededRng) -> Mlp {
    let mut model = Mlp::new(
        &MlpConfig {
            input_dim: 6,
            hidden_dims: vec![16, 16],
            num_classes: 3,
            groups: 4,
            dropout: 0.0,
            input_rescale: true,
        },
        rng,
    );
    // A few steps of real training so deployed weights are non-trivial.
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::Static, rates, rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    for _ in 0..10 {
        let xs: Vec<f32> = (0..32 * 6).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let ys: Vec<usize> = (0..32).map(|i| i % 3).collect();
        let batch = Batch {
            x: Tensor::from_vec([32, 6], xs).unwrap(),
            y: ys,
        };
        trainer.step(&mut model, &batch);
    }
    model
}

#[test]
fn deployed_submodel_is_bit_equivalent_at_every_rate() {
    let mut rng = SeededRng::new(11);
    let mut model = trained_mlp(&mut rng);
    let x = Tensor::from_vec(
        [5, 6],
        (0..30).map(|i| ((i * 7) % 13) as f32 * 0.1 - 0.6).collect(),
    )
    .unwrap();
    for &r in &[0.25f32, 0.5, 0.75, 1.0] {
        let rate = SliceRate::new(r);
        model.set_slice_rate(rate);
        let want = model.forward(&x, Mode::Infer);
        model.set_slice_rate(SliceRate::FULL);
        let mut deployed = model.deploy(rate);
        let got = deployed.forward(&x, Mode::Infer);
        for (a, b) in want.data().iter().zip(got.data()) {
            assert!((a - b).abs() < 1e-4, "rate {r}: {a} vs {b}");
        }
        // Storage claim: deployed params equal the parent's active params.
        model.set_slice_rate(rate);
        let active = model.active_param_count();
        model.set_slice_rate(SliceRate::FULL);
        assert_eq!(deployed.active_param_count(), active, "rate {r}");
    }
}

#[test]
fn incremental_upgrade_matches_wide_forward_for_linear_stack() {
    use modelslicing::slicing::residual::upgrade_linear;
    use modelslicing::tensor::matmul::{gemm, Trans};
    let mut rng = SeededRng::new(12);
    let w = modelslicing::tensor::init::kaiming_normal([12, 10], 10, &mut rng);
    let x = modelslicing::tensor::init::kaiming_normal([4, 10], 10, &mut rng);
    // Narrow pass: first 5 inputs → first 6 outputs.
    let mut x_narrow = Tensor::zeros([4, 5]);
    for s in 0..4 {
        x_narrow.row_mut(s).copy_from_slice(&x.row(s)[..5]);
    }
    let mut y_narrow = Tensor::zeros([4, 6]);
    gemm(
        Trans::No,
        Trans::Yes,
        4,
        6,
        5,
        1.0,
        x_narrow.data(),
        5,
        w.data(),
        10,
        0.0,
        y_narrow.data_mut(),
        6,
    );
    let up = upgrade_linear(&w, &x, &y_narrow, 5, 10, 6, 12);
    // Reference: full-width evaluation.
    let mut want = Tensor::zeros([4, 12]);
    gemm(
        Trans::No,
        Trans::Yes,
        4,
        12,
        10,
        1.0,
        x.data(),
        10,
        w.data(),
        10,
        0.0,
        want.data_mut(),
        12,
    );
    for (a, b) in up.y.data().iter().zip(want.data()) {
        assert!((a - b).abs() < 1e-4);
    }
    assert!(up.flops_spent < up.flops_full);
}
