//! Cross-crate integration tests: the full train → slice → serve pipeline.

use modelslicing::data::loader::ImageBatcher;
use modelslicing::data::synth_images::{ImageDataset, ImageDatasetConfig};
use modelslicing::models::vgg::{Vgg, VggConfig};
use modelslicing::prelude::*;
use modelslicing::slicing::inference::ElasticEngine;
use modelslicing::slicing::trainer::Batch;

fn tiny_dataset() -> ImageDataset {
    ImageDataset::generate(ImageDatasetConfig {
        classes: 4,
        channels: 3,
        size: 8,
        train: 240,
        test: 120,
        noise: 0.3,
        distractor: 0.3,
        seed: 5,
    })
}

fn tiny_vgg(rng: &mut SeededRng) -> Vgg {
    Vgg::new(
        &VggConfig {
            in_channels: 3,
            image_size: 8,
            stages: vec![(1, 8), (1, 16)],
            num_classes: 4,
            groups: 4,
            width_multiplier: 1.0,
        },
        rng,
    )
}

fn train(model: &mut dyn Layer, ds: &ImageDataset, epochs: usize, seed: u64) -> Trainer {
    let mut rng = SeededRng::new(seed);
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::Static, rates, &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    let mut batcher = ImageBatcher::new(ds, 32, true, &mut rng);
    for _ in 0..epochs {
        let batches: Vec<Batch> = batcher
            .epoch()
            .into_iter()
            .map(|(x, y)| Batch { x, y })
            .collect();
        trainer.train_epoch(model, &batches);
    }
    trainer
}

fn test_batches(ds: &ImageDataset) -> Vec<Batch> {
    let (x, y) = ds.test_tensor();
    vec![Batch { x, y }]
}

#[test]
fn sliced_cnn_trains_above_chance_at_every_rate() {
    let ds = tiny_dataset();
    let mut rng = SeededRng::new(1);
    let mut model = tiny_vgg(&mut rng);
    let trainer = train(&mut model, &ds, 12, 2);
    let test = test_batches(&ds);
    // Chance is 25 %; every subnet must be clearly above it, and accuracy
    // must not *decrease* dramatically with width.
    let mut accs = Vec::new();
    for &r in &[0.25f32, 0.5, 0.75, 1.0] {
        let (_, acc) = trainer.evaluate(&mut model, &test, SliceRate::new(r));
        assert!(acc > 0.45, "rate {r}: accuracy {acc} barely above chance");
        accs.push(acc);
    }
    assert!(
        accs.last().unwrap() + 0.1 >= accs[0],
        "full width should not be much worse than base: {accs:?}"
    );
}

#[test]
fn budget_solver_never_exceeds_budget_end_to_end() {
    let mut rng = SeededRng::new(3);
    let mut model = tiny_vgg(&mut rng);
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let cost = CostModel::measure(&mut model, rates.clone());
    let engine = ElasticEngine::new(cost);
    let x = Tensor::zeros([2, 3, 8, 8]);
    let full = engine.cost().full_flops();
    for budget in [full, full / 2, full / 4, full / 10, 1] {
        let (logits, used) =
            engine.predict_with_budget(&mut model, &x, FlopsBudget(budget));
        assert_eq!(logits.dims(), &[2, 4]);
        let spent = engine.cost().flops_at(used);
        // Either within budget, or clamped to the base network (documented
        // starvation behaviour).
        assert!(
            spent <= budget || used == rates.min(),
            "budget {budget}: used rate {used} costing {spent}"
        );
    }
}

#[test]
fn subnet_logits_are_prefix_consistent_without_rescale() {
    // A conv stack (GroupNorm-stabilised, no dense rescale) sliced at rate
    // r must produce *exactly* the first-a-channels activations of the full
    // network at every intermediate layer. We verify the end effect: the
    // sliced forward of the feature extractor equals the full forward's
    // prefix. (The classifier rescales, so we compare pre-classifier.)
    let mut rng = SeededRng::new(4);
    let mut conv = modelslicing::nn::conv2d::Conv2d::new(
        "c",
        modelslicing::nn::conv2d::Conv2dConfig {
            in_ch: 3,
            out_ch: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
            h: 8,
            w: 8,
            in_groups: None,
            out_groups: Some(4),
            bias: false,
        },
        &mut rng,
    );
    let mut gn = modelslicing::nn::norm::GroupNorm::new("g", 8, 4);
    let x = Tensor::from_vec(
        [1, 3, 8, 8],
        (0..192).map(|i| (i as f32 * 0.37).sin()).collect(),
    )
    .unwrap();
    let full = gn.forward(&conv.forward(&x, Mode::Infer), Mode::Infer);
    conv.set_slice_rate(SliceRate::new(0.5));
    gn.set_slice_rate(SliceRate::new(0.5));
    let half = gn.forward(&conv.forward(&x, Mode::Infer), Mode::Infer);
    for c in 0..4 {
        for i in 0..8 {
            for j in 0..8 {
                let a = half.at(&[0, c, i, j]);
                let b = full.at(&[0, c, i, j]);
                assert!((a - b).abs() < 1e-5, "({c},{i},{j}): {a} vs {b}");
            }
        }
    }
}

#[test]
fn trained_weights_survive_rate_switching() {
    // Switching rates must not mutate parameters — only the active-width
    // bookkeeping.
    let mut rng = SeededRng::new(5);
    let mut model = tiny_vgg(&mut rng);
    let mut before = Vec::new();
    model.visit_params(&mut |p| before.push(p.value.clone()));
    for &r in &[0.25f32, 0.75, 0.5, 1.0, 0.25] {
        model.set_slice_rate(SliceRate::new(r));
        let _ = model.forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Infer);
    }
    let mut after = Vec::new();
    model.visit_params(&mut |p| after.push(p.value.clone()));
    assert_eq!(before, after);
}
