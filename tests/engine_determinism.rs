//! Cross-thread determinism of the real serving engine.
//!
//! The engine's contract: replaying the same trace against the same weights
//! and the same (fixed) latency profile yields **bitwise-identical** logits
//! per request, regardless of how many worker threads execute the batches.
//! Three properties conspire to make this hold, and this test locks all of
//! them in at once:
//!
//! 1. batch composition is a pure function of the trace (one seal per tick),
//! 2. the SLA controller's rate choice is a pure function of `(n, budget)`,
//! 3. a GEMM output row depends only on its own input row and the weights,
//!    with fixed-order accumulation — a request's logits are independent of
//!    its batch companions and of which worker ran the batch.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::nn::layer::Layer;
use modelslicing::nn::shared::SharedWeights;
use modelslicing::serving::engine::{Engine, EngineConfig, ReplayReport};
use modelslicing::serving::{LatencyProfile, SlaController, WorkloadConfig, WorkloadTrace};
use modelslicing::slicing::slice_rate::SliceRateList;
use modelslicing::tensor::{SeededRng, Tensor};
use std::sync::Mutex;

/// The telemetry kill switch is process-global; tests that flip it must not
/// overlap tests that assert on registry-backed counters.
static KILL_SWITCH_SERIAL: Mutex<()> = Mutex::new(());

const INPUT_DIM: usize = 12;

fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![32, 32],
        num_classes: 5,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

/// A spiky trace that drives the controller through several widths.
fn trace() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 120,
        base_rate: 30.0,
        diurnal_amplitude: 2.5,
        diurnal_period: 40,
        spike_prob: 0.05,
        spike_multiplier: 16.0,
        spike_len: 8,
        seed: 42,
    })
}

/// Deterministic per-request input, derived only from the request id.
fn input_for(id: u64) -> Tensor {
    let data = (0..INPUT_DIM)
        .map(|j| (id as f32 * 0.7312 + j as f32 * 1.177).sin())
        .collect();
    Tensor::from_vec([INPUT_DIM], data).unwrap()
}

fn replay_with_workers(workers: usize, weights: &SharedWeights) -> ReplayReport {
    let replicas = (0..workers)
        .map(|i| {
            // Deliberately different init seeds per replica: hydration from
            // the shared snapshot must erase every trace of them.
            let mut rng = SeededRng::new(1000 + i as u64);
            let mut m = Mlp::new(&mlp_config(), &mut rng);
            weights.hydrate(&mut m);
            Box::new(m) as Box<dyn Layer + Send>
        })
        .collect();
    // A fixed analytic profile, NOT a calibrated one: calibration times real
    // hardware and would give the two engines different batching decisions.
    let profile = LatencyProfile::quadratic(
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        1e-4,
    );
    let engine = Engine::start(
        EngineConfig {
            latency: 0.02,
            headroom: 1.0,
            max_queue: 100_000,
            refine: false,
        },
        SlaController::elastic(profile),
        replicas,
    );
    let report = engine.replay(&trace(), input_for);
    engine.shutdown();
    report
}

#[test]
fn one_worker_and_four_workers_produce_bitwise_identical_logits() {
    let _serial = KILL_SWITCH_SERIAL.lock().unwrap();
    let mut rng = SeededRng::new(7);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);

    let solo = replay_with_workers(1, &weights);
    let pool = replay_with_workers(4, &weights);

    // Identical admission decisions…
    assert_eq!(solo.served, pool.served);
    assert_eq!(solo.shed, pool.shed);
    assert!(solo.served > 0, "trace produced no served requests");

    // …and bitwise-identical results per request.
    assert_eq!(solo.responses.len(), pool.responses.len());
    for (a, b) in solo.responses.iter().zip(&pool.responses) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.rate, b.rate, "request {} served at different widths", a.id);
        assert_eq!(a.batch_seq, b.batch_seq);
        assert_eq!(
            a.logits, b.logits,
            "request {} logits differ across worker counts",
            a.id
        );
    }

    // The trace must actually have exercised elasticity, or the test proves
    // nothing about rate-dependent batching.
    let widths = pool.counters.rate_histogram.len();
    assert!(
        widths >= 2,
        "trace only used {widths} width(s): {:?}",
        pool.counters.rate_histogram
    );
}

/// Telemetry is observation, not participation: replaying with metric
/// recording enabled and disabled (the kill switch `scripts/perfcheck.sh`
/// uses for the overhead gate) must produce bitwise-identical logits, rates
/// and batch assignments. Together with the `determinism_probe` diff across
/// feature builds in perfcheck, this pins satellite 4's guarantee that
/// instrumented and uninstrumented inference agree bit for bit.
#[test]
fn recording_on_and_off_produce_bitwise_identical_logits() {
    let _serial = KILL_SWITCH_SERIAL.lock().unwrap();
    let mut rng = SeededRng::new(7);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);

    modelslicing::telemetry::set_enabled(true);
    let on = replay_with_workers(2, &weights);
    modelslicing::telemetry::set_enabled(false);
    let off = replay_with_workers(2, &weights);
    modelslicing::telemetry::set_enabled(true);

    assert_eq!(on.served, off.served);
    assert_eq!(on.shed, off.shed);
    assert!(on.served > 0, "trace produced no served requests");
    assert_eq!(on.responses.len(), off.responses.len());
    for (a, b) in on.responses.iter().zip(&off.responses) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.rate, b.rate, "request {} served at different widths", a.id);
        assert_eq!(a.batch_seq, b.batch_seq);
        assert_eq!(
            a.logits, b.logits,
            "request {} logits differ with recording off",
            a.id
        );
    }
}
