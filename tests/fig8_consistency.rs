//! Figure-8 prediction consistency, as an integration test.
//!
//! The paper's Fig. 8 observation: subnets of one model trained with
//! Algorithm 1 make *consistent* predictions — a narrow subnet mostly agrees
//! with the full network, and agreement grows with width. That property (not
//! raw accuracy) is what makes elastic serving safe: degrading the width
//! under load changes few answers, it does not swap in a different model.
//!
//! Here we train a small sliced MLP on separable synthetic clusters and
//! measure top-1 agreement between each subnet and the full network.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::prelude::*;
use modelslicing::slicing::trainer::Batch;

const INPUT_DIM: usize = 16;
const CLASSES: usize = 4;

/// One random centre per class, drawn once and shared by the train and test
/// splits (both must sample the *same* clusters).
fn centres(rng: &mut SeededRng) -> Vec<Vec<f32>> {
    (0..CLASSES)
        .map(|_| (0..INPUT_DIM).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect()
}

/// Gaussian-ish clusters: samples are centre + uniform noise. Separable
/// enough that the MLP learns it quickly, noisy enough that subnet decisions
/// are not all trivially equal.
fn dataset(centres: &[Vec<f32>], n: usize, noise: f32, rng: &mut SeededRng) -> (Tensor, Vec<usize>) {
    let mut data = Vec::with_capacity(n * INPUT_DIM);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % CLASSES;
        labels.push(c);
        for j in 0..INPUT_DIM {
            data.push(centres[c][j] + rng.uniform(-noise, noise));
        }
    }
    (Tensor::from_vec([n, INPUT_DIM], data).unwrap(), labels)
}

fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let dims = logits.dims();
    assert_eq!(dims.len(), 2, "expected [N, C] logits, got {dims:?}");
    let (n, c) = (dims[0], dims[1]);
    (0..n)
        .map(|i| {
            (0..c)
                .max_by(|&a, &b| {
                    logits
                        .at(&[i, a])
                        .partial_cmp(&logits.at(&[i, b]))
                        .expect("finite logits")
                })
                .expect("nonempty row")
        })
        .collect()
}

#[test]
fn subnet_predictions_agree_with_full_net_and_agreement_grows_with_width() {
    let mut rng = SeededRng::new(21);
    let cs = centres(&mut rng);
    let (train_x, train_y) = dataset(&cs, 320, 1.4, &mut rng);
    let (test_x, test_y) = dataset(&cs, 240, 1.4, &mut rng);

    let mut model = Mlp::new(
        &MlpConfig {
            input_dim: INPUT_DIM,
            hidden_dims: vec![32, 32],
            num_classes: CLASSES,
            groups: 4,
            dropout: 0.0,
            input_rescale: true,
        },
        &mut rng,
    );

    // Algorithm 1 with the static scheme: every candidate rate trained each
    // step, so all subnets learn jointly from the same gradients.
    let rates = SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]);
    let scheduler = Scheduler::new(SchedulerKind::Static, rates.clone(), &mut rng);
    let mut trainer = Trainer::new(scheduler, TrainerConfig::default());
    let batch = Batch {
        x: train_x,
        y: train_y,
    };
    for _ in 0..150 {
        trainer.step(&mut model, &batch);
    }

    model.set_slice_rate(SliceRate::FULL);
    let full_pred = argmax_rows(&model.forward(&test_x, Mode::Infer));

    let mut agreements = Vec::new();
    let mut accuracies = Vec::new();
    for r in rates.iter() {
        model.set_slice_rate(r);
        let pred = argmax_rows(&model.forward(&test_x, Mode::Infer));
        let agree = pred
            .iter()
            .zip(&full_pred)
            .filter(|(a, b)| a == b)
            .count() as f64
            / pred.len() as f64;
        let acc = pred.iter().zip(&test_y).filter(|(a, b)| a == b).count() as f64
            / pred.len() as f64;
        agreements.push((r.get(), agree));
        accuracies.push((r.get(), acc));
    }

    // The model must actually have learned the task — otherwise agreement
    // between untrained subnets would be vacuous.
    for &(r, acc) in &accuracies {
        assert!(acc > 0.6, "rate {r}: accuracy {acc:.3} near chance: {accuracies:?}");
    }

    // Full rate agrees with itself exactly.
    assert_eq!(agreements.last().unwrap().1, 1.0);
    // Every subnet is highly consistent with the full network…
    for &(r, a) in &agreements {
        assert!(a >= 0.85, "rate {r}: agreement {a:.3} too low: {agreements:?}");
    }
    // …and consistency does not decrease as width grows (small tolerance
    // for individual flipped test points).
    for w in agreements.windows(2) {
        assert!(
            w[1].1 >= w[0].1 - 0.05,
            "agreement not monotone in width: {agreements:?}"
        );
    }
}
