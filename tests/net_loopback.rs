//! End-to-end serving over TCP: the `tests/serving_sla.rs` flash-crowd
//! story, told through the wire instead of in-process replay.
//!
//! A client paces the spike trace in real time over a loopback socket,
//! stamping every request with its SLA as a wire deadline. On-time is
//! judged where it matters — at the client: response received within the
//! SLA of the moment the request was written. The elastic policy must
//! beat every fixed-rate configuration on deadline hits, and a graceful
//! drain at the end of each run must answer every in-flight request.
//!
//! Latencies here include the transport (encode, socket, decode, the
//! server's rendezvous) on top of queueing and service, so the absolute
//! thresholds are looser than the in-process test's; the *comparative*
//! claim is the load-bearing one, and the transport taxes every policy
//! identically.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::net::protocol::{
    read_frame, write_frame, Frame, InferOutcome, InferRequest,
};
use modelslicing::net::{PipelinedClient, Router, Server, ServerConfig};
use modelslicing::telemetry::flight;
use modelslicing::nn::layer::Layer;
use modelslicing::nn::shared::SharedWeights;
use modelslicing::serving::controller::{RatePolicy, SlaController};
use modelslicing::serving::engine::{Engine, EngineConfig};
use modelslicing::serving::profile::LatencyProfile;
use modelslicing::serving::workload::WorkloadTrace;
use modelslicing::slicing::slice_rate::{SliceRate, SliceRateList};
use modelslicing::tensor::{SeededRng, Tensor};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// These tests time real forward passes against wall-clock deadlines, so
/// no other test in this binary may compete for the CPU while one runs.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const INPUT_DIM: usize = 64;
const REPLICAS: usize = 2;

/// Heavier than the in-process test's MLP on purpose: wall-clock pacing
/// needs engine windows in the milliseconds, or OS scheduling and sleep
/// granularity (~0.1–1 ms) would dominate the µs-scale windows a tiny
/// model calibrates to and every response would miss its deadline for
/// reasons that have nothing to do with the serving policy.
fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![512, 512],
        num_classes: 8,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn calibrated_profile() -> LatencyProfile {
    let mut rng = SeededRng::new(11);
    let mut net = Mlp::new(&mlp_config(), &mut rng);
    LatencyProfile::calibrate(
        &mut net,
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        &[INPUT_DIM],
        512,
        5,
    )
}

fn input_for(id: u64) -> Tensor {
    Tensor::full([INPUT_DIM], ((id % 31) as f32) * 0.06 - 0.9)
}

/// Calm traffic sized from the calibrated profile, with two flash crowds
/// far beyond even the base subnet's capacity (same shape as the
/// in-process SLA test).
fn spike_trace(profile: &LatencyProfile, budget: f64) -> WorkloadTrace {
    let calm = (profile.max_batch(SliceRate::FULL, budget) * 7 / 10).max(1);
    let overload = profile.max_batch(SliceRate::new(0.25), budget) * 3;
    let arrivals: Vec<usize> = (0..60)
        .map(|t| {
            if (15..20).contains(&t) || (40..45).contains(&t) {
                overload
            } else {
                calm
            }
        })
        .collect();
    let rates = arrivals.iter().map(|&n| n as f64).collect();
    WorkloadTrace { arrivals, rates }
}

/// The client-side SLA is this multiple of the engine's internal SLA:
/// the engine plans against the tighter budget, and the allowance covers
/// what the in-process test never pays — transport, the server's
/// rendezvous, and worker/sealer contention when CI gives us one core.
const WIRE_ALLOWANCE: f64 = 2.0;

struct WireRun {
    sent: usize,
    served: usize,
    shed: usize,
    on_time: usize,
    /// The `DrainAck` payload: responses the server flushed in its lifetime.
    ack_delivered: u64,
}

/// Stands up a routed multi-replica server under `policy`, paces `trace`
/// through one pipelined connection (one tick per engine window, every
/// request carrying `latency` as its wire deadline), then drains the
/// server over the wire and accounts for every correlation id.
fn run_over_wire(
    profile: &LatencyProfile,
    policy: RatePolicy,
    trace: &WorkloadTrace,
    latency: f64,
) -> WireRun {
    let mut proto = Mlp::new(&mlp_config(), &mut SeededRng::new(17));
    let weights = SharedWeights::capture(&mut proto);
    let engines = (0..REPLICAS)
        .map(|i| {
            let mut m = Mlp::new(&mlp_config(), &mut SeededRng::new(100 + i as u64));
            weights.hydrate(&mut m);
            Engine::start(
                EngineConfig {
                    latency,
                    headroom: 0.5,
                    max_queue: usize::MAX / 2,
                    refine: false,
                },
                SlaController::new(profile.clone(), policy),
                vec![Box::new(m) as Box<dyn Layer + Send>],
            )
        })
        .collect();
    let server = Server::start(
        "127.0.0.1:0",
        Router::new(engines),
        ServerConfig::default(),
    )
    .expect("bind loopback");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader_stream = stream.try_clone().expect("clone stream");

    let total: usize = trace.arrivals.iter().sum();
    let window = latency / 2.0;
    let deadline = latency * WIRE_ALLOWANCE;
    // Looser than the engine default, so it exercises the wire field
    // without tightening the planner below its configured budget.
    let deadline_micros = (deadline * 1e6) as u64;
    let mut sent_at: Vec<Instant> = Vec::with_capacity(total);

    let (answers, ack) = std::thread::scope(|s| {
        let collector = s.spawn(move || {
            let mut reader = BufReader::new(reader_stream);
            let mut got: Vec<(u64, bool, Instant)> = Vec::new();
            let mut ack = None;
            loop {
                match read_frame(&mut reader) {
                    Ok((Frame::InferResponse(r), _)) => {
                        let ok = matches!(r.outcome, InferOutcome::Logits { .. });
                        got.push((r.correlation_id, ok, Instant::now()));
                    }
                    Ok((Frame::DrainAck { delivered }, _)) => {
                        ack = Some(delivered);
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            (got, ack)
        });

        // Pace the trace on an absolute schedule: one tick per window; a
        // burst that takes longer than a window to serialise just spills
        // into the next tick, exactly as a real client's would.
        let mut writer = BufWriter::new(&stream);
        let start = Instant::now();
        let mut id: u64 = 0;
        for (t, &n) in trace.arrivals.iter().enumerate() {
            let due = window * t as f64;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed < due {
                std::thread::sleep(Duration::from_secs_f64(due - elapsed));
            }
            for _ in 0..n {
                sent_at.push(Instant::now());
                write_frame(
                    &mut writer,
                    &Frame::InferRequest(InferRequest {
                        correlation_id: id,
                        deadline_micros,
                        dims: vec![INPUT_DIM as u32],
                        data: input_for(id).data().to_vec(),
                    }),
                )
                .expect("write request");
                id += 1;
            }
            writer.flush().expect("flush tick");
        }
        // Graceful drain while the backlog is still in flight: every
        // response must be flushed to us before the ack arrives.
        write_frame(&mut writer, &Frame::Drain).expect("write drain");
        writer.flush().expect("flush drain");
        collector.join().expect("collector thread")
    });

    server.shutdown();

    let ack_delivered = ack.expect("no DrainAck before the connection closed");
    let mut seen = vec![false; total];
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut on_time = 0usize;
    let mut lats: Vec<f64> = Vec::new();
    for (cid, ok, t_recv) in &answers {
        let idx = *cid as usize;
        assert!(idx < total, "response for an id never sent: {cid}");
        assert!(!seen[idx], "duplicate response for id {cid}");
        seen[idx] = true;
        if *ok {
            served += 1;
            let l = t_recv.duration_since(sent_at[idx]).as_secs_f64();
            lats.push(l);
            if l <= deadline {
                on_time += 1;
            }
        } else {
            shed += 1;
        }
    }
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !lats.is_empty() {
        eprintln!(
            "DIAG deadline={deadline:.4} served={served} shed={shed} on_time={on_time} p10={:.4} p50={:.4} p90={:.4} p99={:.4}",
            lats[lats.len() / 10],
            lats[lats.len() / 2],
            lats[lats.len() * 9 / 10],
            lats[lats.len() * 99 / 100],
        );
    }
    WireRun {
        sent: total,
        served,
        shed,
        on_time,
        ack_delivered,
    }
}

#[test]
fn wire_elastic_beats_every_fixed_rate_on_deadline_hits() {
    let _serial = serial();
    let profile = calibrated_profile();
    // Real sleeps against real sockets: a scheduler stall on a one-core CI
    // box can sink any single attempt for reasons unrelated to the serving
    // policy, so one failed attempt earns one retry. Two failures in a row
    // is a genuine regression.
    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compare_policies(&profile)
    })) {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic");
        eprintln!("first attempt failed ({msg}); retrying once");
        compare_policies(&profile);
    }
}

/// Turns the flight recorder on for one test and guarantees it is off
/// (and the retained set cleared) however the test exits.
struct RecorderGuard;

impl RecorderGuard {
    fn on() -> RecorderGuard {
        flight::reset();
        // The soak can shed hundreds of requests; keep them all so the
        // retained-set assertions below are not at the mercy of eviction.
        flight::set_tail_policy(flight::TailPolicy {
            slowest_k: 8,
            retain_cap: 4096,
        });
        flight::set_recording(true);
        RecorderGuard
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        flight::set_recording(false);
        flight::set_tail_policy(flight::TailPolicy::default());
        flight::reset();
    }
}

/// End-to-end tracing under contention: 16 pipelined clients, each
/// stamping its own trace ids onto the wire, soak a routed two-replica
/// server. Every single request — served or shed — must come back with a
/// complete, monotonically-timestamped flight chain under its client-
/// chosen id, the chain's terminal must agree with what the client saw,
/// and for the slowest served request the five per-stage durations must
/// sum to within 5% of the latency the client itself measured. The dump
/// is exported as Chrome trace-event JSON and structurally checked.
#[test]
fn sixteen_client_soak_traces_every_request_end_to_end() {
    let _serial = serial();
    let profile = calibrated_profile();
    // Same retry discipline as the policy test: wall-clock deadlines on a
    // shared CI core earn one retry; two failures is a real regression.
    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        traced_soak(&profile, 0xE2E0_0000_0000_0000)
    })) {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic");
        eprintln!("first attempt failed ({msg}); retrying once");
        traced_soak(&profile, 0xE2E1_0000_0000_0000);
    }
}

const SOAK_CLIENTS: usize = 16;
const SOAK_PER_CLIENT: usize = 40;

fn traced_soak(profile: &LatencyProfile, trace_base: u64) {
    let _recorder = RecorderGuard::on();
    let budget = profile.predict(100, SliceRate::FULL);
    // A wide SLA (long seal window) on purpose: the flood then queues for
    // multiple windows, so served latencies are tens of milliseconds and
    // the fixed ~1–2 ms of scheduling/transport slop the chain cannot see
    // stays far inside the 5% attribution tolerance asserted below.
    let latency = budget * 8.0;
    let mut proto = Mlp::new(&mlp_config(), &mut SeededRng::new(17));
    let weights = SharedWeights::capture(&mut proto);
    let engines = (0..REPLICAS)
        .map(|i| {
            let mut m = Mlp::new(&mlp_config(), &mut SeededRng::new(200 + i as u64));
            weights.hydrate(&mut m);
            Engine::start(
                EngineConfig {
                    latency,
                    headroom: 0.5,
                    max_queue: usize::MAX / 2,
                    refine: false,
                },
                SlaController::new(profile.clone(), RatePolicy::Elastic),
                vec![Box::new(m) as Box<dyn Layer + Send>],
            )
        })
        .collect();
    let server = Server::start("127.0.0.1:0", Router::new(engines), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    // Deliberately tight: one full-width batch budget. The flood queues
    // several windows deep, so requests *will* miss this and the
    // controller's narrowed planning budget *will* shed — the outcomes the
    // tail sampler exists for.
    let deadline_micros = (budget * 1e6) as u64;

    // Each client fires its requests in bursts (flood first, collect
    // later) so the replicas see real queueing — the soak must produce
    // deadline misses or admission sheds, not a sequence of idle RPCs.
    type ClientLog = Vec<(u64, f64, bool)>; // (trace_id, client latency s, served)
    let logs: Vec<ClientLog> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SOAK_CLIENTS)
            .map(|k| {
                s.spawn(move || {
                    let mut client = PipelinedClient::connect(addr).expect("connect");
                    // Warm-up round trip: the measured phase must not bill
                    // accept-loop polling and reader/writer thread spawns
                    // to the first request's latency.
                    client
                        .send_traced(u64::MAX, 0, &input_for(0), 0)
                        .expect("warm-up send");
                    client.flush().expect("warm-up flush");
                    client
                        .recv_traced_timeout(Duration::from_secs(60))
                        .expect("warm-up response");
                    let mut sent: Vec<(u64, Instant)> = Vec::with_capacity(SOAK_PER_CLIENT);
                    for i in 0..SOAK_PER_CLIENT {
                        let trace = trace_base + (k as u64) * 1_000 + i as u64;
                        let input = input_for((k * SOAK_PER_CLIENT + i) as u64);
                        // Flush per request: `t0` must mean "this frame is
                        // on the wire", or client-side write buffering
                        // would count against the server's attribution.
                        sent.push((trace, Instant::now()));
                        client
                            .send_traced(i as u64, deadline_micros, &input, trace)
                            .expect("send");
                        client.flush().expect("flush");
                    }
                    let mut log: ClientLog = Vec::with_capacity(SOAK_PER_CLIENT);
                    for _ in 0..SOAK_PER_CLIENT {
                        let (resp, trace) = client
                            .recv_traced_timeout(Duration::from_secs(60))
                            .expect("response before timeout");
                        let (sent_trace, t0) = sent[resp.correlation_id as usize];
                        assert_eq!(
                            trace, sent_trace,
                            "response must echo the request's trace id"
                        );
                        let served = matches!(resp.outcome, InferOutcome::Logits { .. });
                        log.push((trace, t0.elapsed().as_secs_f64(), served));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    server.shutdown();

    // Zero lost ids: one complete, monotone chain per request, terminal
    // agreeing with the client-observed outcome.
    // Bound the range so a retry attempt never picks up the first
    // attempt's chains (each attempt gets its own trace base).
    let trace_end = trace_base + (SOAK_CLIENTS as u64) * 1_000;
    let chains: Vec<flight::TraceChain> = flight::chains()
        .into_iter()
        .filter(|c| c.trace_id >= trace_base && c.trace_id < trace_end)
        .collect();
    let total = SOAK_CLIENTS * SOAK_PER_CLIENT;
    assert_eq!(chains.len(), total, "every request must leave a chain");
    let by_id: std::collections::HashMap<u64, &flight::TraceChain> =
        chains.iter().map(|c| (c.trace_id, c)).collect();
    let mut slowest_served: Option<(u64, f64)> = None; // (trace, client s)
    let mut misses = 0usize;
    let mut sheds = 0usize;
    for (trace, client_s, served) in logs.iter().flatten() {
        let chain = by_id
            .get(trace)
            .unwrap_or_else(|| panic!("trace {trace:#x} lost"));
        assert!(chain.is_monotonic(), "non-monotone chain for {trace:#x}");
        assert!(chain.is_complete(), "incomplete chain for {trace:#x}");
        let terminal = chain.terminal().expect("complete chain has terminal");
        if *served {
            assert_eq!(terminal, flight::EventKind::Delivered, "trace {trace:#x}");
            if chain.deadline_missed() {
                misses += 1;
            }
            if slowest_served.map_or(true, |(_, s)| *client_s > s) {
                slowest_served = Some((*trace, *client_s));
            }
        } else {
            assert_eq!(terminal, flight::EventKind::Shed, "trace {trace:#x}");
            sheds += 1;
        }
    }
    eprintln!(
        "DIAG soak: sheds={sheds} misses={misses} slowest={:?} deadline={:.4}s",
        slowest_served,
        deadline_micros as f64 * 1e-6
    );
    assert!(
        misses + sheds > 0,
        "soak produced neither a deadline miss nor a shed — not a soak"
    );

    // Per-stage attribution accounts for what the client experienced: on
    // the slowest served request (transport is a vanishing fraction of a
    // many-window latency) the five stages must sum to within 5% of the
    // client-measured latency.
    let (slow_trace, client_s) = slowest_served.expect("soak served nothing");
    let chain = by_id[&slow_trace];
    let stages = chain.stage_nanos().expect("served chain has stages");
    let stage_sum_s = stages.iter().sum::<u64>() as f64 * 1e-9;
    assert_eq!(
        stage_sum_s,
        chain.total_nanos().unwrap() as f64 * 1e-9,
        "stages must tile the chain exactly"
    );
    let rel = (client_s - stage_sum_s).abs() / client_s;
    eprintln!(
        "DIAG slowest trace {slow_trace:#x}: client {client_s:.4}s, stages {stage_sum_s:.4}s \
         (rel err {:.2}%), misses={misses} sheds={sheds}",
        rel * 100.0
    );
    assert!(
        rel <= 0.05,
        "stage sum {stage_sum_s:.4}s vs client {client_s:.4}s: {:.1}% apart",
        rel * 100.0
    );

    // The dump round: harvest retains the interesting tail (every shed +
    // every miss + slowest-K), and the Chrome export is structurally valid.
    flight::harvest();
    let retained = flight::retained();
    assert!(
        retained.iter().any(|c| c.trace_id == slow_trace),
        "slowest served chain must be tail-sampled"
    );
    let path = flight::export_chrome_trace("results/logs", "e2e").expect("export");
    let json = std::fs::read_to_string(&path).expect("read export");
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"ph\":\"M\""), "needs metadata events");
    assert!(json.contains("\"ph\":\"X\""), "needs duration slices");
    for name in flight::STAGE_NAMES {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "missing {name}");
    }
    assert!(
        json.contains(&format!("\"trace_id\":{slow_trace}")),
        "slowest chain must appear in the export"
    );
}

fn compare_policies(profile: &LatencyProfile) {
    // Window sized so a full-width batch of a hundred samples fits: big
    // enough that OS and transport jitter are small relative to it, small
    // enough that the fixed-rate runs (which must serve *everything*
    // before their drain completes) stay affordable on one core.
    let budget = profile.predict(100, SliceRate::FULL);
    let latency = budget * 4.0; // window = T/2 = 2·budget, headroom 0.5
    let trace = spike_trace(profile, budget);
    let total: usize = trace.arrivals.iter().sum();

    let elastic = run_over_wire(profile, RatePolicy::Elastic, &trace, latency);
    // Drain dropped nothing: every correlation id came back, and the
    // server's own delivery count agrees.
    assert_eq!(elastic.sent, total);
    assert_eq!(elastic.served + elastic.shed, total, "lost requests");
    assert_eq!(elastic.ack_delivered as usize, total);
    assert!(elastic.served > 0);
    // Under the flash crowds the elastic engine sheds rather than queues…
    assert!(elastic.shed > 0, "flash crowds should force admission shedding");
    // …so a solid fraction of what it does serve meets the deadline even
    // with the wire in the path. The floor is deliberately loose — the
    // comparative assertion below is the load-bearing one; this only
    // catches wholesale SLA collapse (e.g. the deadline field ignored).
    assert!(
        elastic.on_time * 3 >= elastic.served,
        "elastic late too often over the wire: {} on-time of {} served",
        elastic.on_time,
        elastic.served
    );

    for r in profile.list().iter() {
        let fixed = run_over_wire(profile, RatePolicy::Fixed(r), &trace, latency);
        // The inelastic server answers everything — drain still loses
        // nothing even with a multi-window backlog in flight…
        assert_eq!(fixed.served + fixed.shed, total, "lost requests at rate {r}");
        assert_eq!(fixed.ack_delivered as usize, total);
        assert_eq!(fixed.shed, 0, "fixed rate {r} should never shed");
        // …but it answers late: elastic completes strictly more requests
        // within their wire deadlines.
        assert!(
            elastic.on_time > fixed.on_time,
            "fixed rate {r}: {} on-time vs elastic {} (elastic shed {})",
            fixed.on_time,
            elastic.on_time,
            elastic.shed
        );
    }
}

// ---------------------------------------------------------------------------
// 10k-connection reactor soak
// ---------------------------------------------------------------------------

/// The tiny sliced MLP for the connection-scale soak: at these widths
/// every batch of ≤ 32 rows stays on the per-row small-GEMM path, so a
/// request's logits are independent of its batch companions and bitwise
/// replay is a fair demand (same argument as `crates/net/tests/soak.rs`).
fn small_mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: 8,
        hidden_dims: vec![32],
        num_classes: 4,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn small_profile() -> LatencyProfile {
    LatencyProfile::quadratic(SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]), 1e-5)
}

fn small_input(id: u64) -> Tensor {
    Tensor::full([8], ((id % 251) as f32) * 0.008 - 1.0)
}

fn small_engine(cfg: &MlpConfig, weights: &SharedWeights, policy: RatePolicy) -> Engine {
    let mut m = Mlp::new(cfg, &mut SeededRng::new(400));
    weights.hydrate(&mut m);
    Engine::start(
        EngineConfig {
            // Wide window and deep queue: this soak is about connection
            // scale and delivery accounting, not SLAs — nothing may shed.
            latency: 0.05,
            headroom: 1.0,
            max_queue: 1_000_000,
            refine: false,
        },
        SlaController::new(small_profile(), policy),
        vec![Box::new(m)],
    )
}

/// The out-of-process client fleet for the 10k soak below — not a test
/// in its own right (an immediate no-op unless `MS_SOAK10K_ADDR` is
/// set). fd limits are per-process and this container caps
/// `RLIMIT_NOFILE` at 20k with `CAP_SYS_RESOURCE` dropped, while 10k
/// blocking clients cost 20k fds on their own (each `Client` holds two
/// via `try_clone`) on top of the server's 10k accepted sockets — so
/// the soak re-execs this binary twice, each child holding half the
/// client fleet, leaving the server half of every pair to the parent.
///
/// Each child's threads open their blocking clients (a barrier holds
/// until the whole child fleet is connected before any request flows),
/// round-robin requests over every connection, and stream
/// `id rate_bits logit_bits…` lines to `MS_SOAK10K_OUT` for the parent
/// to verify against an in-process replay.
#[test]
#[ignore = "helper process for the 10k soak; no-op unless MS_SOAK10K_ADDR is set"]
fn soak10k_client_fleet_helper() {
    use modelslicing::net::{sys, Client};
    use std::io::BufWriter as IoBufWriter;
    use std::sync::{Arc, Barrier};

    let Ok(addr) = std::env::var("MS_SOAK10K_ADDR") else {
        return;
    };
    let out_path = std::env::var("MS_SOAK10K_OUT").expect("MS_SOAK10K_OUT");
    let threads: usize = std::env::var("MS_SOAK10K_THREADS")
        .expect("MS_SOAK10K_THREADS")
        .parse()
        .expect("thread count");
    let per_thread: usize = std::env::var("MS_SOAK10K_CONNS_PER_THREAD")
        .expect("MS_SOAK10K_CONNS_PER_THREAD")
        .parse()
        .expect("conns per thread");
    let reqs_per_conn: usize = std::env::var("MS_SOAK10K_REQS_PER_CONN")
        .expect("MS_SOAK10K_REQS_PER_CONN")
        .parse()
        .expect("reqs per conn");
    let thread_base: usize = std::env::var("MS_SOAK10K_THREAD_BASE")
        .expect("MS_SOAK10K_THREAD_BASE")
        .parse()
        .expect("thread base");
    // A blocking `Client` costs two fds (`try_clone` splits the stream
    // into buffered read/write halves), hence the factor of 2.
    let nofile = sys::raise_nofile_limit(65_536).expect("raise RLIMIT_NOFILE");
    assert!(
        nofile as usize >= threads * per_thread * 2 + 200,
        "client fleet needs {} fds, RLIMIT_NOFILE is {nofile}",
        threads * per_thread * 2
    );

    let barrier = Arc::new(Barrier::new(threads));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conns: Vec<Client> = (0..per_thread)
                    .map(|_| Client::connect(&*addr).expect("connect"))
                    .collect();
                barrier.wait(); // all fleet connections open before any request

                let mut got: Vec<(u64, f32, Vec<f32>)> =
                    Vec::with_capacity(per_thread * reqs_per_conn);
                for seq in 0..reqs_per_conn {
                    for (k, conn) in conns.iter_mut().enumerate() {
                        let id = (((thread_base + t) * per_thread + k) as u64) * 100 + seq as u64;
                        let deadline_micros = if seq % 2 == 0 { 0 } else { 500_000 };
                        let r = conn
                            .infer(id, deadline_micros, &small_input(id))
                            .expect("infer");
                        assert_eq!(r.correlation_id, id, "response for the wrong request");
                        match r.outcome {
                            InferOutcome::Logits { data, .. } => got.push((id, r.rate_used, data)),
                            InferOutcome::Shed(reason) => {
                                panic!("unexpected shed {reason:?} for id {id}")
                            }
                        }
                    }
                }
                got
            })
        })
        .collect();

    let mut out = IoBufWriter::new(std::fs::File::create(&out_path).expect("create out file"));
    for w in workers {
        for (id, rate, logits) in w.join().expect("fleet thread") {
            write!(out, "{id} {}", rate.to_bits()).expect("write result");
            for l in &logits {
                write!(out, " {}", l.to_bits()).expect("write result");
            }
            writeln!(out).expect("write result");
        }
    }
    out.into_inner().expect("flush results").sync_all().expect("sync results");
}

/// 10,000 concurrent connections against the reactor: the client fleet
/// runs in a re-exec of this binary (see `soak10k_client_fleet_helper`
/// for why fd limits force two processes), all 10k held open at once —
/// asserted via the live connection gauge — while churn clients in this
/// process connect, fire requests, and vanish without reading, some
/// hanging up with unread response bytes (an RST on Linux, which may
/// retroactively discard their request). Then a graceful drain with a
/// 200-request burst still in flight.
///
/// Asserted: zero lost correlation ids across 20k healthy requests,
/// every healthy response bitwise-identical to an in-process `replay()`
/// at the same rate, every burst response flushed before the `DrainAck`,
/// and the ack's delivery count bracketed by exact churn accounting.
#[test]
#[ignore = "10k-connection soak; run with cargo test --release --test net_loopback -- --ignored"]
fn ten_thousand_connections_zero_loss_bitwise_replay_and_drain_under_churn() {
    use modelslicing::net::{sys, Client};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const CHILDREN: usize = 2; // fd budget: see soak10k_client_fleet_helper
    const THREADS_PER_CHILD: usize = 8;
    const THREADS: usize = CHILDREN * THREADS_PER_CHILD;
    const CONNS_PER_THREAD: usize = 625; // 16 × 625 = 10,000 connections
    const REQS_PER_CONN: usize = 2;
    const CHURN_THREADS: usize = 8;
    const CHURN_ITERS: usize = 40;
    const BURST: u64 = 200;
    const FLEET: u64 = (THREADS * CONNS_PER_THREAD) as u64;

    let _guard = serial();
    // This process holds the server half of every fleet socket (~10k fds);
    // the fleet child holds the client half under its own limit.
    let nofile = sys::raise_nofile_limit(65_536).expect("raise RLIMIT_NOFILE");
    assert!(
        nofile >= FLEET + 1_000,
        "server side of {FLEET} connections needs fds; RLIMIT_NOFILE is {nofile}"
    );

    let cfg = small_mlp_config();
    let mut proto = Mlp::new(&cfg, &mut SeededRng::new(7));
    let weights = SharedWeights::capture(&mut proto);
    let engines = (0..REPLICAS)
        .map(|_| small_engine(&cfg, &weights, RatePolicy::Elastic))
        .collect();
    let server = Server::start(
        "127.0.0.1:0",
        Router::new(engines),
        ServerConfig {
            seal_interval: Some(Duration::from_millis(1)),
            reactors: 2, // exercise cross-reactor round-robin at scale
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Phases 1–2 run in the fleet child: connect all 10k, then round-robin
    // blocking requests over every connection (≤ 16 healthy requests
    // outstanding, so server batches stay on the small-GEMM path even
    // with churn rows).
    // A fleet child that outlives a parent panic would pin its half of
    // every socket open forever; reap on every exit path.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    std::fs::create_dir_all("results/logs").expect("results dir");
    let exe = std::env::current_exe().expect("current_exe");
    let mut out_paths = Vec::new();
    let mut fleet: Vec<KillOnDrop> = (0..CHILDREN)
        .map(|child| {
            let out_path =
                format!("results/logs/soak10k_fleet_{}_{child}.txt", std::process::id());
            let spawned = std::process::Command::new(&exe)
                .args(["soak10k_client_fleet_helper", "--exact", "--ignored", "--nocapture"])
                .env("MS_SOAK10K_ADDR", addr.to_string())
                .env("MS_SOAK10K_OUT", &out_path)
                .env("MS_SOAK10K_THREADS", THREADS_PER_CHILD.to_string())
                .env("MS_SOAK10K_CONNS_PER_THREAD", CONNS_PER_THREAD.to_string())
                .env("MS_SOAK10K_REQS_PER_CONN", REQS_PER_CONN.to_string())
                .env("MS_SOAK10K_THREAD_BASE", (child * THREADS_PER_CHILD).to_string())
                .spawn()
                .expect("spawn client fleet");
            out_paths.push(out_path);
            KillOnDrop(spawned)
        })
        .collect();

    // The fleet holds every connection open until its request phase ends,
    // so the gauge reaching 10k proves all of them concurrently open.
    let connect_deadline = Instant::now() + Duration::from_secs(120);
    while server.connections() < FLEET {
        assert!(
            Instant::now() < connect_deadline,
            "fleet stalled at {} of {FLEET} connections",
            server.connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Churn: clients that connect, send, and disconnect mid-trace. Rude
    // hangups (drop with the response unread) may RST before the server
    // reads the request, so delivery is *bracketed*: every completed
    // round trip is a floor, every successful write a ceiling.
    let churn_written = Arc::new(AtomicU64::new(0));
    let churn_read = Arc::new(AtomicU64::new(0));
    let churners: Vec<_> = (0..CHURN_THREADS)
        .map(|ct| {
            let written = Arc::clone(&churn_written);
            let read = Arc::clone(&churn_read);
            std::thread::spawn(move || {
                for it in 0..CHURN_ITERS {
                    let id = 0x8000_0000_0000_0000u64 | ((ct as u64) << 32) | it as u64;
                    if it % 2 == 0 {
                        // Polite: full round trip, then hang up cleanly.
                        let mut c = Client::connect(addr).expect("churn connect");
                        let r = c.infer(id, 0, &small_input(id)).expect("churn infer");
                        assert_eq!(r.correlation_id, id);
                        written.fetch_add(1, Ordering::Relaxed);
                        read.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Rude: write the request, give the server a moment,
                        // vanish with the response unread.
                        let mut s = TcpStream::connect(addr).expect("churn connect");
                        let val = ((id % 251) as f32) * 0.008 - 1.0;
                        let req = Frame::InferRequest(InferRequest {
                            correlation_id: id,
                            deadline_micros: 0,
                            dims: vec![8],
                            data: vec![val; 8],
                        });
                        if write_frame(&mut s, &req).is_ok() {
                            written.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        drop(s);
                    }
                }
            })
        })
        .collect();

    let mut by_id: HashMap<u64, (f32, Vec<f32>)> = HashMap::new();
    for (child, out_path) in fleet.iter_mut().zip(&out_paths) {
        let status = child.0.wait().expect("await client fleet");
        assert!(status.success(), "client fleet failed: {status}");
        for line in std::fs::read_to_string(out_path).expect("fleet results").lines() {
            let mut cols = line.split_ascii_whitespace();
            let id: u64 = cols.next().expect("id").parse().expect("id");
            let rate = f32::from_bits(cols.next().expect("rate").parse().expect("rate"));
            let logits: Vec<f32> = cols
                .map(|c| f32::from_bits(c.parse().expect("logit bits")))
                .collect();
            assert!(
                by_id.insert(id, (rate, logits)).is_none(),
                "duplicate response for id {id}"
            );
        }
        std::fs::remove_file(out_path).ok();
    }
    let healthy_total = FLEET * REQS_PER_CONN as u64;
    assert_eq!(by_id.len() as u64, healthy_total, "lost correlation ids");
    for c in churners {
        c.join().expect("churn thread");
    }

    // Phase 3: graceful drain with a burst still in flight. Every burst
    // response must be flushed before the ack (readable without waiting).
    let mut tail = PipelinedClient::connect(addr).expect("connect tail");
    for i in 0..BURST {
        tail.send(0xC000_0000_0000_0000 + i, 0, &small_input(i))
            .expect("burst send");
    }
    tail.flush().expect("burst flush");
    let ack = tail
        .drain_server(Duration::from_secs(30))
        .expect("drain ack");
    let mut seen = vec![false; BURST as usize];
    for _ in 0..BURST {
        let r = tail
            .recv_timeout(Duration::from_secs(1))
            .expect("burst response flushed before ack");
        let k = (r.correlation_id - 0xC000_0000_0000_0000) as usize;
        assert!(!seen[k], "duplicate burst response");
        seen[k] = true;
        assert!(matches!(r.outcome, InferOutcome::Logits { .. }));
    }
    assert!(seen.iter().all(|&s| s), "lost correlation ids in the drain burst");

    let floor = healthy_total + BURST + churn_read.load(Ordering::Relaxed);
    let ceiling = healthy_total + BURST + churn_written.load(Ordering::Relaxed);
    assert!(
        ack >= floor && ack <= ceiling,
        "drain ack {ack} outside churn-accounting bracket [{floor}, {ceiling}]"
    );
    server.shutdown();

    // Phase 4: bitwise replay. Group healthy responses by the rate the
    // server actually used, replay each group in ≤ 16-row ticks through a
    // fresh in-process engine fixed at that rate, compare bit patterns.
    let mut groups: HashMap<u32, Vec<u64>> = HashMap::new();
    for (&id, &(rate, _)) in &by_id {
        groups.entry(rate.to_bits()).or_default().push(id);
    }
    let rates = small_profile().list().clone();
    for (rate_bits, mut ids) in groups {
        let rate = f32::from_bits(rate_bits);
        let sr = rates
            .iter()
            .find(|sr| sr.get() == rate)
            .unwrap_or_else(|| panic!("server used rate {rate} not in the profile list"));
        ids.sort_unstable();
        let reference = small_engine(&cfg, &weights, RatePolicy::Fixed(sr));
        let arrivals: Vec<usize> = ids.chunks(16).map(|c| c.len()).collect();
        let trace = WorkloadTrace {
            rates: arrivals.iter().map(|&n| n as f64).collect(),
            arrivals,
        };
        let ids_for_replay = ids.clone();
        let report = reference.replay(&trace, move |replay_id| {
            small_input(ids_for_replay[replay_id as usize])
        });
        reference.shutdown();
        assert_eq!(report.served, ids.len());
        for resp in &report.responses {
            assert_eq!(resp.rate, rate);
            let wire = &by_id[&ids[resp.id as usize]].1;
            let wire_bits: Vec<u32> = wire.iter().map(|x| x.to_bits()).collect();
            let ref_bits: Vec<u32> = resp.logits.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                wire_bits, ref_bits,
                "logits differ from in-process replay for id {} at rate {rate}",
                ids[resp.id as usize]
            );
        }
    }
}
