//! End-to-end serving over TCP: the `tests/serving_sla.rs` flash-crowd
//! story, told through the wire instead of in-process replay.
//!
//! A client paces the spike trace in real time over a loopback socket,
//! stamping every request with its SLA as a wire deadline. On-time is
//! judged where it matters — at the client: response received within the
//! SLA of the moment the request was written. The elastic policy must
//! beat every fixed-rate configuration on deadline hits, and a graceful
//! drain at the end of each run must answer every in-flight request.
//!
//! Latencies here include the transport (encode, socket, decode, the
//! server's rendezvous) on top of queueing and service, so the absolute
//! thresholds are looser than the in-process test's; the *comparative*
//! claim is the load-bearing one, and the transport taxes every policy
//! identically.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::net::protocol::{
    read_frame, write_frame, Frame, InferOutcome, InferRequest,
};
use modelslicing::net::{Router, Server, ServerConfig};
use modelslicing::nn::layer::Layer;
use modelslicing::nn::shared::SharedWeights;
use modelslicing::serving::controller::{RatePolicy, SlaController};
use modelslicing::serving::engine::{Engine, EngineConfig};
use modelslicing::serving::profile::LatencyProfile;
use modelslicing::serving::workload::WorkloadTrace;
use modelslicing::slicing::slice_rate::{SliceRate, SliceRateList};
use modelslicing::tensor::{SeededRng, Tensor};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// These tests time real forward passes against wall-clock deadlines, so
/// no other test in this binary may compete for the CPU while one runs.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const INPUT_DIM: usize = 64;
const REPLICAS: usize = 2;

/// Heavier than the in-process test's MLP on purpose: wall-clock pacing
/// needs engine windows in the milliseconds, or OS scheduling and sleep
/// granularity (~0.1–1 ms) would dominate the µs-scale windows a tiny
/// model calibrates to and every response would miss its deadline for
/// reasons that have nothing to do with the serving policy.
fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![512, 512],
        num_classes: 8,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn calibrated_profile() -> LatencyProfile {
    let mut rng = SeededRng::new(11);
    let mut net = Mlp::new(&mlp_config(), &mut rng);
    LatencyProfile::calibrate(
        &mut net,
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        &[INPUT_DIM],
        512,
        5,
    )
}

fn input_for(id: u64) -> Tensor {
    Tensor::full([INPUT_DIM], ((id % 31) as f32) * 0.06 - 0.9)
}

/// Calm traffic sized from the calibrated profile, with two flash crowds
/// far beyond even the base subnet's capacity (same shape as the
/// in-process SLA test).
fn spike_trace(profile: &LatencyProfile, budget: f64) -> WorkloadTrace {
    let calm = (profile.max_batch(SliceRate::FULL, budget) * 7 / 10).max(1);
    let overload = profile.max_batch(SliceRate::new(0.25), budget) * 3;
    let arrivals: Vec<usize> = (0..60)
        .map(|t| {
            if (15..20).contains(&t) || (40..45).contains(&t) {
                overload
            } else {
                calm
            }
        })
        .collect();
    let rates = arrivals.iter().map(|&n| n as f64).collect();
    WorkloadTrace { arrivals, rates }
}

/// The client-side SLA is this multiple of the engine's internal SLA:
/// the engine plans against the tighter budget, and the allowance covers
/// what the in-process test never pays — transport, the server's
/// rendezvous, and worker/sealer contention when CI gives us one core.
const WIRE_ALLOWANCE: f64 = 2.0;

struct WireRun {
    sent: usize,
    served: usize,
    shed: usize,
    on_time: usize,
    /// The `DrainAck` payload: responses the server flushed in its lifetime.
    ack_delivered: u64,
}

/// Stands up a routed multi-replica server under `policy`, paces `trace`
/// through one pipelined connection (one tick per engine window, every
/// request carrying `latency` as its wire deadline), then drains the
/// server over the wire and accounts for every correlation id.
fn run_over_wire(
    profile: &LatencyProfile,
    policy: RatePolicy,
    trace: &WorkloadTrace,
    latency: f64,
) -> WireRun {
    let mut proto = Mlp::new(&mlp_config(), &mut SeededRng::new(17));
    let weights = SharedWeights::capture(&mut proto);
    let engines = (0..REPLICAS)
        .map(|i| {
            let mut m = Mlp::new(&mlp_config(), &mut SeededRng::new(100 + i as u64));
            weights.hydrate(&mut m);
            Engine::start(
                EngineConfig {
                    latency,
                    headroom: 0.5,
                    max_queue: usize::MAX / 2,
                },
                SlaController::new(profile.clone(), policy),
                vec![Box::new(m) as Box<dyn Layer + Send>],
            )
        })
        .collect();
    let server = Server::start(
        "127.0.0.1:0",
        Router::new(engines),
        ServerConfig::default(),
    )
    .expect("bind loopback");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader_stream = stream.try_clone().expect("clone stream");

    let total: usize = trace.arrivals.iter().sum();
    let window = latency / 2.0;
    let deadline = latency * WIRE_ALLOWANCE;
    // Looser than the engine default, so it exercises the wire field
    // without tightening the planner below its configured budget.
    let deadline_micros = (deadline * 1e6) as u64;
    let mut sent_at: Vec<Instant> = Vec::with_capacity(total);

    let (answers, ack) = std::thread::scope(|s| {
        let collector = s.spawn(move || {
            let mut reader = BufReader::new(reader_stream);
            let mut got: Vec<(u64, bool, Instant)> = Vec::new();
            let mut ack = None;
            loop {
                match read_frame(&mut reader) {
                    Ok((Frame::InferResponse(r), _)) => {
                        let ok = matches!(r.outcome, InferOutcome::Logits { .. });
                        got.push((r.correlation_id, ok, Instant::now()));
                    }
                    Ok((Frame::DrainAck { delivered }, _)) => {
                        ack = Some(delivered);
                        break;
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            (got, ack)
        });

        // Pace the trace on an absolute schedule: one tick per window; a
        // burst that takes longer than a window to serialise just spills
        // into the next tick, exactly as a real client's would.
        let mut writer = BufWriter::new(&stream);
        let start = Instant::now();
        let mut id: u64 = 0;
        for (t, &n) in trace.arrivals.iter().enumerate() {
            let due = window * t as f64;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed < due {
                std::thread::sleep(Duration::from_secs_f64(due - elapsed));
            }
            for _ in 0..n {
                sent_at.push(Instant::now());
                write_frame(
                    &mut writer,
                    &Frame::InferRequest(InferRequest {
                        correlation_id: id,
                        deadline_micros,
                        dims: vec![INPUT_DIM as u32],
                        data: input_for(id).data().to_vec(),
                    }),
                )
                .expect("write request");
                id += 1;
            }
            writer.flush().expect("flush tick");
        }
        // Graceful drain while the backlog is still in flight: every
        // response must be flushed to us before the ack arrives.
        write_frame(&mut writer, &Frame::Drain).expect("write drain");
        writer.flush().expect("flush drain");
        collector.join().expect("collector thread")
    });

    server.shutdown();

    let ack_delivered = ack.expect("no DrainAck before the connection closed");
    let mut seen = vec![false; total];
    let mut served = 0usize;
    let mut shed = 0usize;
    let mut on_time = 0usize;
    let mut lats: Vec<f64> = Vec::new();
    for (cid, ok, t_recv) in &answers {
        let idx = *cid as usize;
        assert!(idx < total, "response for an id never sent: {cid}");
        assert!(!seen[idx], "duplicate response for id {cid}");
        seen[idx] = true;
        if *ok {
            served += 1;
            let l = t_recv.duration_since(sent_at[idx]).as_secs_f64();
            lats.push(l);
            if l <= deadline {
                on_time += 1;
            }
        } else {
            shed += 1;
        }
    }
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !lats.is_empty() {
        eprintln!(
            "DIAG deadline={deadline:.4} served={served} shed={shed} on_time={on_time} p10={:.4} p50={:.4} p90={:.4} p99={:.4}",
            lats[lats.len() / 10],
            lats[lats.len() / 2],
            lats[lats.len() * 9 / 10],
            lats[lats.len() * 99 / 100],
        );
    }
    WireRun {
        sent: total,
        served,
        shed,
        on_time,
        ack_delivered,
    }
}

#[test]
fn wire_elastic_beats_every_fixed_rate_on_deadline_hits() {
    let _serial = serial();
    let profile = calibrated_profile();
    // Real sleeps against real sockets: a scheduler stall on a one-core CI
    // box can sink any single attempt for reasons unrelated to the serving
    // policy, so one failed attempt earns one retry. Two failures in a row
    // is a genuine regression.
    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compare_policies(&profile)
    })) {
        let msg = e
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| e.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic");
        eprintln!("first attempt failed ({msg}); retrying once");
        compare_policies(&profile);
    }
}

fn compare_policies(profile: &LatencyProfile) {
    // Window sized so a full-width batch of a hundred samples fits: big
    // enough that OS and transport jitter are small relative to it, small
    // enough that the fixed-rate runs (which must serve *everything*
    // before their drain completes) stay affordable on one core.
    let budget = profile.predict(100, SliceRate::FULL);
    let latency = budget * 4.0; // window = T/2 = 2·budget, headroom 0.5
    let trace = spike_trace(profile, budget);
    let total: usize = trace.arrivals.iter().sum();

    let elastic = run_over_wire(profile, RatePolicy::Elastic, &trace, latency);
    // Drain dropped nothing: every correlation id came back, and the
    // server's own delivery count agrees.
    assert_eq!(elastic.sent, total);
    assert_eq!(elastic.served + elastic.shed, total, "lost requests");
    assert_eq!(elastic.ack_delivered as usize, total);
    assert!(elastic.served > 0);
    // Under the flash crowds the elastic engine sheds rather than queues…
    assert!(elastic.shed > 0, "flash crowds should force admission shedding");
    // …so a solid fraction of what it does serve meets the deadline even
    // with the wire in the path. The floor is deliberately loose — the
    // comparative assertion below is the load-bearing one; this only
    // catches wholesale SLA collapse (e.g. the deadline field ignored).
    assert!(
        elastic.on_time * 3 >= elastic.served,
        "elastic late too often over the wire: {} on-time of {} served",
        elastic.on_time,
        elastic.served
    );

    for r in profile.list().iter() {
        let fixed = run_over_wire(profile, RatePolicy::Fixed(r), &trace, latency);
        // The inelastic server answers everything — drain still loses
        // nothing even with a multi-window backlog in flight…
        assert_eq!(fixed.served + fixed.shed, total, "lost requests at rate {r}");
        assert_eq!(fixed.ack_delivered as usize, total);
        assert_eq!(fixed.shed, 0, "fixed rate {r} should never shed");
        // …but it answers late: elastic completes strictly more requests
        // within their wire deadlines.
        assert!(
            elastic.on_time > fixed.on_time,
            "fixed rate {r}: {} on-time vs elastic {} (elastic shed {})",
            fixed.on_time,
            elastic.on_time,
            elastic.shed
        );
    }
}
