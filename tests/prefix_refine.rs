//! Property tests for the anytime-refinement contract: for any network in
//! the zoo and any pair of rates `r₁ < r₂`, refining a prefix pass from
//! `r₁` up to `r₂` is **bitwise identical** to a direct prefix pass at
//! `r₂`. This is the invariant that lets the serving engine climb the
//! ladder mid-flight without changing a single logit bit.
//!
//! Shapes are deliberately awkward (dims not divisible by the group
//! count) so the canonical-prefix-width bookkeeping is exercised at group
//! boundaries that land off the obvious multiples.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::models::mobile::{MobileConfig, MobileNetStyle};
use modelslicing::nn::activation::Relu;
use modelslicing::nn::conv2d::{Conv2d, Conv2dConfig};
use modelslicing::nn::layer::Layer;
use modelslicing::nn::norm::GroupNorm;
use modelslicing::nn::rnn::gru::{Gru, GruConfig};
use modelslicing::nn::rnn::lstm::{Lstm, LstmConfig};
use modelslicing::nn::sequential::Sequential;
use modelslicing::nn::slice::SliceRate;
use modelslicing::tensor::{SeededRng, Tensor};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Uniform input in [-1, 1) with the given dims, deterministic in `seed`.
fn input(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        dims.to_vec(),
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect(),
    )
    .expect("input tensor")
}

/// Asserts the refinement contract on one network family: a fresh net
/// refined `r₁ → r₂` must produce bit-for-bit the logits of a fresh net
/// driven straight to `r₂`. `build` must be deterministic in its seed.
fn assert_refine_bitwise(
    build: impl Fn() -> Box<dyn Layer>,
    x: &Tensor,
    r1: SliceRate,
    r2: SliceRate,
) -> Result<(), TestCaseError> {
    let mut direct_net = build();
    let direct = direct_net.forward_prefix(x, None, r2);

    let mut refined_net = build();
    let base = refined_net.forward_prefix(x, None, r1);
    let refined = refined_net.forward_prefix(x, Some(r1), r2);

    prop_assert_eq!(direct.dims(), refined.dims());
    let direct_bits: Vec<u32> = direct.data().iter().map(|v| v.to_bits()).collect();
    let refined_bits: Vec<u32> = refined.data().iter().map(|v| v.to_bits()).collect();
    prop_assert_eq!(direct_bits, refined_bits, "refine {}→{} diverged", r1, r2);
    base.recycle();
    refined.recycle();
    direct.recycle();
    Ok(())
}

/// Builds `r₁ < r₂` from a 64-step grid: `lo` keeps the pair well above
/// rate ~0 and `bump` steps strictly upward, capped at full width.
fn rate_pair(lo: u32, bump: u32) -> (SliceRate, SliceRate) {
    let hi = (lo + bump).min(64);
    (
        SliceRate::new(lo as f32 / 64.0),
        SliceRate::new(hi as f32 / 64.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MLP with prime-ish dims: 13 → 21 → 14 → 7 in 3 groups.
    #[test]
    fn mlp_refine_is_bitwise_identical(
        lo in 8u32..64,
        bump in 1u32..16,
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (r1, r2) = rate_pair(lo, bump);
        let cfg = MlpConfig {
            input_dim: 13,
            hidden_dims: vec![21, 14],
            num_classes: 7,
            groups: 3,
            dropout: 0.0,
            input_rescale: true,
        };
        let x = input(&[batch, 13], seed);
        assert_refine_bitwise(
            || Box::new(Mlp::new(&cfg, &mut SeededRng::new(5))),
            &x, r1, r2,
        )?;
    }

    /// Conv → GroupNorm → ReLU → Conv with 9 channels in 3 groups; the
    /// head conv is output-pinned, so only the interior is sliced.
    #[test]
    fn conv_groupnorm_refine_is_bitwise_identical(
        lo in 8u32..64,
        bump in 1u32..16,
        batch in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (r1, r2) = rate_pair(lo, bump);
        let build = || -> Box<dyn Layer> {
            let mut rng = SeededRng::new(7);
            let mut net = Sequential::new("convnet");
            net.add(Box::new(Conv2d::new(
                "c1",
                Conv2dConfig {
                    in_ch: 2, out_ch: 9, kernel: 3, stride: 1, pad: 1,
                    h: 5, w: 5, in_groups: None, out_groups: Some(3),
                    bias: true,
                },
                &mut rng,
            )));
            net.add(Box::new(GroupNorm::new("gn", 9, 3)));
            net.add(Box::new(Relu::new()));
            net.add(Box::new(Conv2d::new(
                "head",
                Conv2dConfig {
                    in_ch: 9, out_ch: 4, kernel: 3, stride: 1, pad: 1,
                    h: 5, w: 5, in_groups: Some(3), out_groups: None,
                    bias: true,
                },
                &mut rng,
            )));
            Box::new(net)
        };
        let x = input(&[batch, 2, 5, 5], seed);
        assert_refine_bitwise(build, &x, r1, r2)?;
    }

    /// Depthwise-separable stack (depthwise → GN → pointwise → pool →
    /// classifier), the §3.5 multi-branch case.
    #[test]
    fn mobile_refine_is_bitwise_identical(
        lo in 8u32..64,
        bump in 1u32..16,
        batch in 1usize..3,
        seed in any::<u64>(),
    ) {
        let (r1, r2) = rate_pair(lo, bump);
        let cfg = MobileConfig {
            in_channels: 2,
            image_size: 6,
            stages: vec![(1, 6)],
            num_classes: 5,
            groups: 3,
        };
        let x = input(&[batch, 2, 6, 6], seed);
        assert_refine_bitwise(
            || Box::new(MobileNetStyle::new(&cfg, &mut SeededRng::new(9))),
            &x, r1, r2,
        )?;
    }

    /// LSTM with full-width input and 3 hidden groups over 9 units.
    #[test]
    fn lstm_refine_is_bitwise_identical(
        lo in 8u32..64,
        bump in 1u32..16,
        batch in 1usize..4,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (r1, r2) = rate_pair(lo, bump);
        let cfg = LstmConfig {
            in_dim: 5,
            hidden_dim: 9,
            in_groups: None,
            out_groups: Some(3),
            input_rescale: true,
        };
        let x = input(&[batch, steps, 5], seed);
        assert_refine_bitwise(
            || Box::new(Lstm::new("lstm", cfg.clone(), &mut SeededRng::new(13))),
            &x, r1, r2,
        )?;
    }

    /// GRU with the same edge geometry as the LSTM case.
    #[test]
    fn gru_refine_is_bitwise_identical(
        lo in 8u32..64,
        bump in 1u32..16,
        batch in 1usize..4,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (r1, r2) = rate_pair(lo, bump);
        let cfg = GruConfig {
            in_dim: 5,
            hidden_dim: 9,
            in_groups: None,
            out_groups: Some(3),
            input_rescale: true,
        };
        let x = input(&[batch, steps, 5], seed);
        assert_refine_bitwise(
            || Box::new(Gru::new("gru", cfg.clone(), &mut SeededRng::new(13))),
            &x, r1, r2,
        )?;
    }
}
