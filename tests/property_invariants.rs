//! Property-based tests (proptest) over the core invariants of model
//! slicing, run across randomly drawn configurations.

use modelslicing::nn::gradcheck::{check_layer, CheckOpts};
use modelslicing::nn::linear::{Linear, LinearConfig};
use modelslicing::nn::slice::{active_units, group_boundary};
use modelslicing::prelude::*;
use modelslicing::tensor::matmul::{gemm, gemm_reference, Trans};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM agrees with the naive reference for arbitrary small shapes,
    /// transposes and padding.
    #[test]
    fn gemm_matches_reference(
        m in 1usize..10, n in 1usize..10, k in 1usize..10,
        pad in 0usize..4,
        ta in any::<bool>(), tb in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let (ta, tb) = (
            if ta { Trans::Yes } else { Trans::No },
            if tb { Trans::Yes } else { Trans::No },
        );
        let (ar, ac) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (br, bc) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let (lda, ldb, ldc) = (ac + pad, bc + pad, n + pad);
        let a: Vec<f32> = (0..ar * lda).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..br * ldb).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let c0: Vec<f32> = (0..m * ldc).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut fast = c0.clone();
        let mut refr = c0;
        gemm(ta, tb, m, n, k, 0.5, &a, lda, &b, ldb, 0.25, &mut fast, ldc);
        gemm_reference(ta, tb, m, n, k, 0.5, &a, lda, &b, ldb, 0.25, &mut refr, ldc);
        for (x, y) in fast.iter().zip(&refr) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// Group boundaries always partition [0, m] into non-empty increasing
    /// segments, and active_units is monotone in the rate with the base
    /// group as a floor.
    #[test]
    fn slicing_group_math_invariants(
        m in 1usize..200,
        g_raw in 1usize..32,
        r1 in 0.01f32..1.0,
        r2 in 0.01f32..1.0,
    ) {
        let g = g_raw.min(m);
        prop_assert_eq!(group_boundary(m, g, 0), 0);
        prop_assert_eq!(group_boundary(m, g, g), m);
        for i in 1..=g {
            prop_assert!(group_boundary(m, g, i) > group_boundary(m, g, i - 1));
        }
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let a_lo = active_units(m, g, SliceRate::new(lo));
        let a_hi = active_units(m, g, SliceRate::new(hi));
        prop_assert!(a_lo <= a_hi, "monotonicity: {a_lo} > {a_hi}");
        prop_assert!(a_lo >= group_boundary(m, g, 1), "base group floor");
        prop_assert_eq!(active_units(m, g, SliceRate::FULL), m);
    }

    /// A sliced linear layer's active parameters are always a subset of the
    /// full layer's (subsumption), and FLOPs are monotone in the rate.
    #[test]
    fn linear_subsumption_and_cost_monotone(
        in_dim in 4usize..32,
        out_dim in 4usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let mut layer = Linear::new(
            "fc",
            LinearConfig {
                in_dim,
                out_dim,
                in_groups: Some(4.min(in_dim)),
                out_groups: Some(4.min(out_dim)),
                bias: true,
                input_rescale: false,
            },
            &mut rng,
        );
        let mut prev_flops = 0u64;
        let mut prev_params = 0u64;
        for k in 1..=8 {
            let r = SliceRate::new(k as f32 / 8.0);
            layer.set_slice_rate(r);
            let f = layer.flops_per_sample();
            let p = layer.active_param_count();
            prop_assert!(f >= prev_flops);
            prop_assert!(p >= prev_params);
            prev_flops = f;
            prev_params = p;
        }
        layer.set_slice_rate(SliceRate::FULL);
        prop_assert_eq!(prev_flops, (in_dim * out_dim) as u64);
    }

    /// The Eq.-3 solver's chosen rate always fits the budget (or is the
    /// base network) and is maximal on the candidate list.
    #[test]
    fn budget_solver_is_maximal_and_feasible(
        budget_frac in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let mut layer = Linear::new(
            "fc",
            LinearConfig {
                in_dim: 32,
                out_dim: 32,
                in_groups: Some(8),
                out_groups: Some(8),
                bias: false,
                input_rescale: false,
            },
            &mut rng,
        );
        let rates = SliceRateList::with_granularity(0.25, 0.125);
        let cost = CostModel::measure(&mut layer, rates.clone());
        let budget = FlopsBudget((cost.full_flops() as f64 * budget_frac) as u64);
        let chosen = cost.rate_for_budget(budget);
        let spent = cost.flops_at(chosen);
        if spent > budget.0 {
            prop_assert_eq!(chosen, rates.min(), "over budget must clamp to base");
        }
        // Maximality: no larger candidate also fits.
        for r in rates.iter() {
            if r > chosen {
                prop_assert!(cost.flops_at(r) > budget.0, "larger rate {r} also fits");
            }
        }
    }

    /// Gradient check on randomly configured linear layers at random rates.
    #[test]
    fn random_linear_layers_pass_gradcheck(
        in_dim in 4usize..12,
        out_dim in 4usize..12,
        rate_idx in 1usize..4,
        rescale in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = SeededRng::new(seed);
        let mut layer = Linear::new(
            "fc",
            LinearConfig {
                in_dim,
                out_dim,
                in_groups: Some(4.min(in_dim)),
                out_groups: Some(4.min(out_dim)),
                bias: true,
                input_rescale: rescale,
            },
            &mut rng,
        );
        let rate = SliceRate::new(rate_idx as f32 / 4.0);
        layer.set_slice_rate(rate);
        let a_in = active_units(in_dim, 4.min(in_dim), rate);
        let x = Tensor::from_vec(
            [2, a_in],
            (0..2 * a_in).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        ).expect("input");
        let result = check_layer(&mut layer, &x, &mut rng, &CheckOpts::default());
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }

    /// Softmax rows are a probability distribution for any finite input.
    #[test]
    fn softmax_rows_are_distributions(
        vals in proptest::collection::vec(-50.0f32..50.0, 2..40),
    ) {
        let cols = vals.len();
        let mut row = vals;
        modelslicing::tensor::ops::softmax_rows_inplace(&mut row, cols);
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Inclusion coefficient is symmetric, bounded, and 1.0 for nested sets.
    #[test]
    fn inclusion_coefficient_properties(
        mut a in proptest::collection::btree_set(0usize..100, 0..30),
        mut b in proptest::collection::btree_set(0usize..100, 0..30),
    ) {
        use modelslicing::data::metrics::inclusion_coefficient;
        let av: Vec<usize> = a.iter().copied().collect();
        let bv: Vec<usize> = b.iter().copied().collect();
        let ab = inclusion_coefficient(&av, &bv);
        let ba = inclusion_coefficient(&bv, &av);
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&ab));
        // Nested: union vs subset.
        a.extend(b.iter().copied());
        let union: Vec<usize> = a.iter().copied().collect();
        b.retain(|v| union.contains(v));
        let sub: Vec<usize> = b.iter().copied().collect();
        prop_assert_eq!(inclusion_coefficient(&sub, &union), 1.0);
    }
}
