//! Serving-layer integration: latency SLA and degradation quality under
//! flash crowds.
//!
//! Two regimes, both asserted:
//! - **Moderate overload** (peaks near the base subnet's capacity — the
//!   paper's §4.1 setting): model slicing dominates *every* coarse policy,
//!   because it degrades exactly as much as the load requires.
//! - **Extreme overload** (peaks far beyond even the base subnet): slicing
//!   still beats the fixed/drop policies, but a swap to an ultra-cheap
//!   model (rel. cost 5 %, e.g. a GBDT) can win on raw throughput — the
//!   honest boundary of the method, since the narrowest subnet is only
//!   ~7× cheaper than the full model.

use modelslicing::serving::controller::{AccuracyTable, Policy};
use modelslicing::serving::simulator::{SimConfig, Simulator};
use modelslicing::serving::workload::{WorkloadConfig, WorkloadTrace};
use modelslicing::slicing::slice_rate::SliceRateList;

fn simulator() -> Simulator {
    Simulator::new(
        SimConfig {
            t_full: 1e-3,
            latency: 0.04, // budget 20 ms per batch → 20 full-model queries
        },
        AccuracyTable::new(
            SliceRateList::paper_cifar(),
            vec![0.90, 0.92, 0.93, 0.94, 0.945, 0.95],
        ),
    )
}

fn swap_policy() -> Policy {
    Policy::ModelSwap {
        rel_cost: 0.05,
        accuracy: 0.70,
    }
}

/// Peaks ≈ 140 queries/tick, right at the base subnet's capacity
/// (20 ms / (0.375² · 1 ms) ≈ 142).
fn moderate() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 8.0,
        diurnal_amplitude: 2.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 8.0,
        spike_len: 30,
        seed: 99,
    })
}

/// Peaks ≈ 580 queries/tick, 4× beyond the base subnet's capacity.
fn extreme() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 12.0,
        diurnal_amplitude: 3.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 16.0,
        spike_len: 30,
        seed: 99,
    })
}

#[test]
fn extreme_workload_hits_sixteen_x_peaks() {
    let trace = extreme();
    assert!(
        trace.volatility() > 8.0,
        "trace not volatile enough: {:.1}",
        trace.volatility()
    );
    let peak = trace.rates.iter().cloned().fold(0.0f64, f64::max);
    assert!(peak >= 12.0 * 16.0, "peak rate {peak}");
}

#[test]
fn moderate_overload_slicing_dominates_every_policy() {
    let sim = simulator();
    let trace = moderate();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [
        Policy::FixedFull,
        Policy::FixedBase,
        Policy::DropCandidates,
        swap_policy(),
    ] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
    }
    // And it sheds essentially nothing.
    let shed_rate = slicing.shed as f64 / slicing.arrived as f64;
    assert!(shed_rate < 0.005, "slicing shed {shed_rate:.4}");
}

#[test]
fn extreme_overload_slicing_beats_fixed_and_drop() {
    let sim = simulator();
    let trace = extreme();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [Policy::FixedFull, Policy::DropCandidates] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
        assert!(slicing.shed <= other.shed, "{policy:?}");
    }
}

#[test]
fn processing_never_exceeds_the_latency_budget() {
    // By construction every policy decision respects `time_spent ≤ T/2`;
    // verify over both traces for the elastic policy.
    let sim = simulator();
    for trace in [moderate(), extreme()] {
        let report = sim.run(Policy::ModelSlicing, &trace);
        assert!(report.utilization <= 1.0 + 1e-9);
    }
}
