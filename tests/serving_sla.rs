//! Serving-layer integration: latency SLA and degradation quality under
//! flash crowds.
//!
//! Two regimes, both asserted:
//! - **Moderate overload** (peaks near the base subnet's capacity — the
//!   paper's §4.1 setting): model slicing dominates *every* coarse policy,
//!   because it degrades exactly as much as the load requires.
//! - **Extreme overload** (peaks far beyond even the base subnet): slicing
//!   still beats the fixed/drop policies, but a swap to an ultra-cheap
//!   model (rel. cost 5 %, e.g. a GBDT) can win on raw throughput — the
//!   honest boundary of the method, since the narrowest subnet is only
//!   ~7× cheaper than the full model.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::nn::layer::Layer;
use modelslicing::nn::shared::SharedWeights;
use modelslicing::serving::controller::{AccuracyTable, Policy, RatePolicy, SlaController};
use modelslicing::serving::engine::{Engine, EngineConfig, ReplayReport};
use modelslicing::serving::profile::LatencyProfile;
use modelslicing::serving::simulator::{SimConfig, Simulator};
use modelslicing::serving::workload::{WorkloadConfig, WorkloadTrace};
use modelslicing::slicing::slice_rate::{SliceRate, SliceRateList};
use modelslicing::telemetry::flight;
use modelslicing::tensor::{SeededRng, Tensor};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// The measured-latency tests below time real forward passes, so no other
/// test in this binary may compete for the CPU while one runs (the harness
/// runs tests on parallel threads; CI boxes can be single-core). Every test
/// takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn simulator() -> Simulator {
    Simulator::new(
        SimConfig {
            t_full: 1e-3,
            latency: 0.04, // budget 20 ms per batch → 20 full-model queries
        },
        AccuracyTable::new(
            SliceRateList::paper_cifar(),
            vec![0.90, 0.92, 0.93, 0.94, 0.945, 0.95],
        ),
    )
}

fn swap_policy() -> Policy {
    Policy::ModelSwap {
        rel_cost: 0.05,
        accuracy: 0.70,
    }
}

/// Peaks ≈ 140 queries/tick, right at the base subnet's capacity
/// (20 ms / (0.375² · 1 ms) ≈ 142).
fn moderate() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 8.0,
        diurnal_amplitude: 2.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 8.0,
        spike_len: 30,
        seed: 99,
    })
}

/// Peaks ≈ 580 queries/tick, 4× beyond the base subnet's capacity.
fn extreme() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 12.0,
        diurnal_amplitude: 3.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 16.0,
        spike_len: 30,
        seed: 99,
    })
}

#[test]
fn extreme_workload_hits_sixteen_x_peaks() {
    let _serial = serial();
    let trace = extreme();
    assert!(
        trace.volatility() > 8.0,
        "trace not volatile enough: {:.1}",
        trace.volatility()
    );
    let peak = trace.rates.iter().cloned().fold(0.0f64, f64::max);
    assert!(peak >= 12.0 * 16.0, "peak rate {peak}");
}

#[test]
fn moderate_overload_slicing_dominates_every_policy() {
    let _serial = serial();
    let sim = simulator();
    let trace = moderate();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [
        Policy::FixedFull,
        Policy::FixedBase,
        Policy::DropCandidates,
        swap_policy(),
    ] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
    }
    // And it sheds essentially nothing.
    let shed_rate = slicing.shed as f64 / slicing.arrived as f64;
    assert!(shed_rate < 0.005, "slicing shed {shed_rate:.4}");
}

#[test]
fn extreme_overload_slicing_beats_fixed_and_drop() {
    let _serial = serial();
    let sim = simulator();
    let trace = extreme();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [Policy::FixedFull, Policy::DropCandidates] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
        assert!(slicing.shed <= other.shed, "{policy:?}");
    }
}

#[test]
fn processing_never_exceeds_the_latency_budget() {
    let _serial = serial();
    // By construction every policy decision respects `time_spent ≤ T/2`;
    // verify over both traces for the elastic policy.
    let sim = simulator();
    for trace in [moderate(), extreme()] {
        let report = sim.run(Policy::ModelSlicing, &trace);
        assert!(report.utilization <= 1.0 + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Measured-latency assertions: the same SLA story, told by the real engine
// instead of the synthetic simulator. The latency profile is calibrated on
// the live network, so every number below is a wall-clock measurement on
// this machine.
// ---------------------------------------------------------------------------

const INPUT_DIM: usize = 16;

fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![48, 48],
        num_classes: 8,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn calibrated_profile() -> LatencyProfile {
    let mut rng = SeededRng::new(11);
    let mut net = Mlp::new(&mlp_config(), &mut rng);
    LatencyProfile::calibrate(
        &mut net,
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        &[INPUT_DIM],
        512,
        5,
    )
}

/// Runs one single-worker engine over `trace` under the given policy and
/// reports the replay (virtual arrival clock, measured service times).
fn replay_measured(
    profile: &LatencyProfile,
    policy: RatePolicy,
    trace: &WorkloadTrace,
    latency: f64,
) -> ReplayReport {
    let mut rng = SeededRng::new(17);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let mut replica = Mlp::new(&mlp_config(), &mut SeededRng::new(18));
    weights.hydrate(&mut replica);
    let engine = Engine::start(
        EngineConfig {
            latency,
            // Plan to half the window: the other half absorbs measurement
            // jitter between calibration time and replay time.
            headroom: 0.5,
            max_queue: usize::MAX / 2,
            refine: false,
        },
        SlaController::new(profile.clone(), policy),
        vec![Box::new(replica) as Box<dyn Layer + Send>],
    );
    let report = engine.replay(trace, |id| {
        Tensor::full([INPUT_DIM], ((id % 31) as f32) * 0.06 - 0.9)
    });
    engine.shutdown();
    report
}

/// Calm traffic sized from the calibrated profile itself, with two flash
/// crowds far beyond even the base subnet's capacity.
fn spike_trace(profile: &LatencyProfile, budget: f64) -> WorkloadTrace {
    let calm = (profile.max_batch(SliceRate::FULL, budget) * 7 / 10).max(1);
    let overload = profile.max_batch(SliceRate::new(0.25), budget) * 3;
    let arrivals: Vec<usize> = (0..60)
        .map(|t| {
            if (15..20).contains(&t) || (40..45).contains(&t) {
                overload
            } else {
                calm
            }
        })
        .collect();
    let rates = arrivals.iter().map(|&n| n as f64).collect();
    WorkloadTrace { arrivals, rates }
}

#[test]
fn measured_elastic_beats_every_fixed_rate_on_deadline_hits() {
    let _serial = serial();
    let profile = calibrated_profile();
    // Window sized so a full-width batch of a few hundred samples fits:
    // big enough that OS timing jitter is small relative to the budget.
    let budget = profile.predict(200, SliceRate::FULL);
    let latency = budget * 4.0; // window = T/2 = 2·budget, headroom 0.5
    let trace = spike_trace(&profile, budget);

    let elastic = replay_measured(&profile, RatePolicy::Elastic, &trace, latency);
    // Elastic never plans past the budget, so nearly everything it admits
    // hits the deadline even with measurement noise.
    // Rare multi-x outliers (OS scheduling) can push the odd batch past the
    // window; the bulk must hit the deadline.
    assert!(
        elastic.on_time as f64 >= elastic.served as f64 * 0.85,
        "elastic late too often: {} late of {} served",
        elastic.late,
        elastic.served
    );
    assert!(elastic.served > 0);

    for r in profile.list().iter() {
        let fixed = replay_measured(&profile, RatePolicy::Fixed(r), &trace, latency);
        // The inelastic server answers everything…
        assert_eq!(fixed.shed, 0);
        // …but under the flash crowds it answers late: the elastic engine
        // completes strictly more requests within the SLA.
        assert!(
            elastic.on_time > fixed.on_time,
            "fixed rate {r}: {} on-time vs elastic {} (elastic shed {})",
            fixed.on_time,
            elastic.on_time,
            elastic.shed
        );
    }
}

#[test]
fn measured_elastic_stays_on_time_with_multiple_workers() {
    let _serial = serial();
    let profile = calibrated_profile();
    let budget = profile.predict(200, SliceRate::FULL);
    let latency = budget * 4.0;
    let trace = spike_trace(&profile, budget);

    let mut rng = SeededRng::new(29);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let replicas = (0..3)
        .map(|i| {
            let mut m = Mlp::new(&mlp_config(), &mut SeededRng::new(100 + i));
            weights.hydrate(&mut m);
            Box::new(m) as Box<dyn Layer + Send>
        })
        .collect();
    let engine = Engine::start(
        EngineConfig {
            latency,
            headroom: 0.5,
            max_queue: usize::MAX / 2,
            refine: false,
        },
        SlaController::elastic(profile),
        replicas,
    );
    let report = engine.replay(&trace, |_| Tensor::zeros([INPUT_DIM]));
    engine.shutdown();
    assert_eq!(report.served + report.shed, report.arrived);
    assert!(
        report.on_time as f64 >= report.served as f64 * 0.85,
        "late {} of {}",
        report.late,
        report.served
    );
}

// ---------------------------------------------------------------------------
// Anytime refinement under calibration drift: live-paced engines.
//
// The replay harness scores deadlines on a virtual timeline, but the
// refinement ladder consults the *wall clock* — so the refine story needs
// engines paced in real time, with tick lengths far above OS jitter. All
// batch sizes below are derived from a live-calibrated profile, so the
// arithmetic is machine-independent: a spike batch is sized to take
// 1.5× the processing window at full width *on this machine, today*.
// ---------------------------------------------------------------------------

/// Wider MLP for the live-paced tests: per-sample cost large enough that
/// profile-derived batch sizes stay small (cheap to stage inside a tick).
fn wide_mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![128, 128],
        num_classes: 8,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn wide_calibrated_profile() -> LatencyProfile {
    let mut rng = SeededRng::new(11);
    let mut net = Mlp::new(&wide_mlp_config(), &mut rng);
    LatencyProfile::calibrate(
        &mut net,
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        &[INPUT_DIM],
        128,
        3,
    )
}

/// Scales every per-sample time (and the overhead) by `factor` — a stale
/// profile calibrated when the machine looked `1/factor`× faster than it
/// measures today.
fn drifted(profile: &LatencyProfile, factor: f64) -> LatencyProfile {
    let per_sample = profile
        .list()
        .iter()
        .map(|r| profile.per_sample(r) * factor)
        .collect();
    LatencyProfile::new(
        profile.list().clone(),
        per_sample,
        profile.predict(0, SliceRate::FULL) * factor,
    )
}

struct LiveOutcome {
    served: usize,
    on_time: usize,
    /// Ladder-step counter (per request per step).
    refined: u64,
    /// Highest rate any response was served at.
    top_rate: f32,
}

/// Paces `arrivals` through a single-worker engine in real time: one seal
/// per tick of length `window` seconds, deadlines scored against the wall
/// clock (`sealed + window` — the same instant the refinement ladder
/// plans against). A collector thread timestamps responses as they land.
fn run_live(
    believed: &LatencyProfile,
    arrivals: &[usize],
    window: f64,
    headroom: f64,
    refine: bool,
) -> LiveOutcome {
    let mut rng = SeededRng::new(17);
    let mut proto = Mlp::new(&wide_mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let mut replica = Mlp::new(&wide_mlp_config(), &mut SeededRng::new(18));
    weights.hydrate(&mut replica);
    let engine = Engine::start(
        EngineConfig {
            latency: window * 2.0,
            headroom,
            max_queue: usize::MAX / 2,
            refine,
        },
        SlaController::new(believed.clone(), RatePolicy::Elastic),
        vec![Box::new(replica) as Box<dyn Layer + Send>],
    );

    let mut deadline_of: HashMap<u64, Instant> = HashMap::new();
    let stop = AtomicBool::new(false);
    let done: Vec<(u64, f32, Instant)> = thread::scope(|s| {
        let collector = s.spawn(|| {
            let mut done = Vec::new();
            loop {
                let stopping = stop.load(Ordering::Acquire);
                let now = Instant::now();
                for r in engine.take_responses() {
                    done.push((r.id, r.rate, now));
                }
                if stopping {
                    return done;
                }
                thread::sleep(Duration::from_micros(500));
            }
        });
        let tick = Duration::from_secs_f64(window);
        let t0 = Instant::now();
        for (i, &n) in arrivals.iter().enumerate() {
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let x = Tensor::full([INPUT_DIM], ((i % 31) as f32) * 0.06 - 0.9);
                if let Ok(id) = engine.submit(x) {
                    ids.push(id);
                }
            }
            engine.seal();
            let deadline = Instant::now() + tick;
            for id in ids {
                deadline_of.insert(id, deadline);
            }
            let next = t0 + tick * (i as u32 + 1);
            if let Some(d) = next.checked_duration_since(Instant::now()) {
                thread::sleep(d);
            }
        }
        engine.drain();
        stop.store(true, Ordering::Release);
        collector.join().expect("collector thread")
    });

    let refined = engine.counters().refined;
    engine.shutdown();
    let on_time = done
        .iter()
        .filter(|(id, _, at)| deadline_of.get(id).is_some_and(|d| at <= d))
        .count();
    let top_rate = done.iter().map(|&(_, r, _)| r).fold(0.0f32, f32::max);
    LiveOutcome {
        served: done.len(),
        on_time,
        refined,
        top_rate,
    }
}

/// Calm ticks sized at 70 % of full-width capacity, with two flash crowds
/// whose *true* full-width cost is 1.5× the processing window.
fn live_trace(truth: &LatencyProfile, window: f64) -> Vec<usize> {
    let c_full = truth.max_batch(SliceRate::FULL, window / 2.0).max(2);
    let calm = (c_full * 7 / 10).max(1);
    let overload = c_full * 3;
    (0..30)
        .map(|t| {
            if (8..12).contains(&t) || (20..24).contains(&t) {
                overload
            } else {
                calm
            }
        })
        .collect()
}

#[test]
fn refine_beats_aggressive_planning_under_profile_drift() {
    let _serial = serial();
    let truth = wide_calibrated_profile();
    // Both engines plan against a stale profile that claims the machine is
    // 2× faster than it is. The aggressive engine trusts it and plans the
    // whole window; the conservative engine plans an eighth of the window
    // and relies on the wall-clock refinement ladder to win the width back.
    let believed = drifted(&truth, 0.5);
    let window = 0.01; // 10 ms ticks: far above scheduler jitter
    let trace = live_trace(&truth, window);

    // Headroom 1.0 + optimistic profile: flash-crowd batches are planned at
    // full width but truly cost 1.5× the window — late by construction, and
    // the backlog drags the following calm batches past their deadlines too.
    let aggressive = run_live(&believed, &trace, window, 1.0, false);
    // Headroom 0.125 + refinement: base passes are planned narrow (safe even
    // at 2× drift), then each batch climbs the ladder against the *real*
    // clock, which no profile error can fake.
    let refining = run_live(&believed, &trace, window, 0.125, true);

    assert!(refining.refined > 0, "refinement ladder never fired");
    assert!(
        (refining.top_rate - 1.0).abs() < 1e-6,
        "refinement never reached full width: top rate {}",
        refining.top_rate
    );
    assert!(
        refining.on_time > aggressive.on_time,
        "refine {} on-time of {} vs aggressive {} of {}",
        refining.on_time,
        refining.served,
        aggressive.on_time,
        aggressive.served
    );
}

/// Soak: thousands of traced requests through a refining engine with the
/// flight recorder on. Every request must come back with logits at *some*
/// rate, every trace chain must be complete and time-ordered, and recorded
/// ladder steps must walk strictly upward without gaps.
#[test]
#[ignore = "anytime soak; run with --ignored"]
fn anytime_soak_serves_everyone_with_complete_monotone_traces() {
    let _serial = serial();
    let profile = calibrated_profile();
    let mut rng = SeededRng::new(17);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let mut replica = Mlp::new(&mlp_config(), &mut SeededRng::new(18));
    weights.hydrate(&mut replica);
    let engine = Engine::start(
        EngineConfig {
            latency: 0.1, // 50 ms window: every batch has refinement slack
            headroom: 0.25,
            max_queue: usize::MAX / 2,
            refine: true,
        },
        // Pin the planner to the base subnet: under this light load an
        // elastic planner would pick full width outright and leave the
        // ladder nothing to do. Fixed(0.25) makes every wider rate the
        // ladder's work, which is what the soak is here to exercise.
        SlaController::new(profile, RatePolicy::Fixed(SliceRate::new(0.25))),
        vec![Box::new(replica) as Box<dyn Layer + Send>],
    );

    flight::reset();
    flight::set_recording(true);
    const ROUNDS: usize = 800;
    const PER_ROUND: usize = 4;
    let mut traces = Vec::with_capacity(ROUNDS * PER_ROUND);
    for round in 0..ROUNDS {
        for k in 0..PER_ROUND {
            let tr = flight::next_trace_id();
            // The soak is its own front-end: stamp the wire event the TCP
            // layer would normally produce.
            flight::wire_decoded(tr, 100_000);
            let x = Tensor::full(
                [INPUT_DIM],
                (((round * PER_ROUND + k) % 31) as f32) * 0.06 - 0.9,
            );
            engine.submit_traced(x, None, tr).expect("soak admits all");
            traces.push(tr);
        }
        engine.seal();
        if round % 16 == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    engine.drain();
    let responses = engine.take_responses();
    for r in &responses {
        flight::delivered(r.trace_id);
        assert!(r.rate > 0.0, "request {} served without a rate", r.id);
    }
    assert_eq!(responses.len(), traces.len(), "soak shed requests");
    let refined_counter = engine.counters().refined;
    assert!(refined_counter > 0, "soak never exercised the ladder");
    engine.shutdown();

    let chains = flight::chains();
    let by_id: HashMap<u64, _> = chains.iter().map(|c| (c.trace_id, c)).collect();
    let mut refine_events = 0usize;
    for &tr in &traces {
        let c = by_id.get(&tr).unwrap_or_else(|| panic!("trace {tr} lost"));
        assert!(c.is_complete(), "incomplete chain for trace {tr}");
        assert!(c.is_monotonic(), "out-of-order chain for trace {tr}");
        let steps = c.refine_steps();
        for &(from, to) in &steps {
            assert!(from < to, "trace {tr}: non-ascending step {from}→{to}");
        }
        for w in steps.windows(2) {
            assert_eq!(w[0].1, w[1].0, "trace {tr}: ladder gap {w:?}");
        }
        refine_events += steps.len();
    }
    // `engine_refined_total` adds one per request per ladder step, and the
    // worker stamps one `RefineStep` event per trace per step: the flight
    // recorder and the metrics registry must tell the same story.
    assert_eq!(
        refine_events as u64, refined_counter,
        "flight ladder steps disagree with engine_refined_total"
    );
    flight::set_recording(false);
    flight::reset();
}
