//! Serving-layer integration: latency SLA and degradation quality under
//! flash crowds.
//!
//! Two regimes, both asserted:
//! - **Moderate overload** (peaks near the base subnet's capacity — the
//!   paper's §4.1 setting): model slicing dominates *every* coarse policy,
//!   because it degrades exactly as much as the load requires.
//! - **Extreme overload** (peaks far beyond even the base subnet): slicing
//!   still beats the fixed/drop policies, but a swap to an ultra-cheap
//!   model (rel. cost 5 %, e.g. a GBDT) can win on raw throughput — the
//!   honest boundary of the method, since the narrowest subnet is only
//!   ~7× cheaper than the full model.

use modelslicing::models::mlp::{Mlp, MlpConfig};
use modelslicing::nn::layer::Layer;
use modelslicing::nn::shared::SharedWeights;
use modelslicing::serving::controller::{AccuracyTable, Policy, RatePolicy, SlaController};
use modelslicing::serving::engine::{Engine, EngineConfig, ReplayReport};
use modelslicing::serving::profile::LatencyProfile;
use modelslicing::serving::simulator::{SimConfig, Simulator};
use modelslicing::serving::workload::{WorkloadConfig, WorkloadTrace};
use modelslicing::slicing::slice_rate::{SliceRate, SliceRateList};
use modelslicing::tensor::{SeededRng, Tensor};
use std::sync::Mutex;

/// The measured-latency tests below time real forward passes, so no other
/// test in this binary may compete for the CPU while one runs (the harness
/// runs tests on parallel threads; CI boxes can be single-core). Every test
/// takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn simulator() -> Simulator {
    Simulator::new(
        SimConfig {
            t_full: 1e-3,
            latency: 0.04, // budget 20 ms per batch → 20 full-model queries
        },
        AccuracyTable::new(
            SliceRateList::paper_cifar(),
            vec![0.90, 0.92, 0.93, 0.94, 0.945, 0.95],
        ),
    )
}

fn swap_policy() -> Policy {
    Policy::ModelSwap {
        rel_cost: 0.05,
        accuracy: 0.70,
    }
}

/// Peaks ≈ 140 queries/tick, right at the base subnet's capacity
/// (20 ms / (0.375² · 1 ms) ≈ 142).
fn moderate() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 8.0,
        diurnal_amplitude: 2.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 8.0,
        spike_len: 30,
        seed: 99,
    })
}

/// Peaks ≈ 580 queries/tick, 4× beyond the base subnet's capacity.
fn extreme() -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        ticks: 3000,
        base_rate: 12.0,
        diurnal_amplitude: 3.0,
        diurnal_period: 600,
        spike_prob: 0.003,
        spike_multiplier: 16.0,
        spike_len: 30,
        seed: 99,
    })
}

#[test]
fn extreme_workload_hits_sixteen_x_peaks() {
    let _serial = serial();
    let trace = extreme();
    assert!(
        trace.volatility() > 8.0,
        "trace not volatile enough: {:.1}",
        trace.volatility()
    );
    let peak = trace.rates.iter().cloned().fold(0.0f64, f64::max);
    assert!(peak >= 12.0 * 16.0, "peak rate {peak}");
}

#[test]
fn moderate_overload_slicing_dominates_every_policy() {
    let _serial = serial();
    let sim = simulator();
    let trace = moderate();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [
        Policy::FixedFull,
        Policy::FixedBase,
        Policy::DropCandidates,
        swap_policy(),
    ] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
    }
    // And it sheds essentially nothing.
    let shed_rate = slicing.shed as f64 / slicing.arrived as f64;
    assert!(shed_rate < 0.005, "slicing shed {shed_rate:.4}");
}

#[test]
fn extreme_overload_slicing_beats_fixed_and_drop() {
    let _serial = serial();
    let sim = simulator();
    let trace = extreme();
    let slicing = sim.run(Policy::ModelSlicing, &trace);
    for policy in [Policy::FixedFull, Policy::DropCandidates] {
        let other = sim.run(policy, &trace);
        assert!(
            slicing.mean_accuracy > other.mean_accuracy,
            "{policy:?}: {} vs slicing {}",
            other.mean_accuracy,
            slicing.mean_accuracy
        );
        assert!(slicing.shed <= other.shed, "{policy:?}");
    }
}

#[test]
fn processing_never_exceeds_the_latency_budget() {
    let _serial = serial();
    // By construction every policy decision respects `time_spent ≤ T/2`;
    // verify over both traces for the elastic policy.
    let sim = simulator();
    for trace in [moderate(), extreme()] {
        let report = sim.run(Policy::ModelSlicing, &trace);
        assert!(report.utilization <= 1.0 + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Measured-latency assertions: the same SLA story, told by the real engine
// instead of the synthetic simulator. The latency profile is calibrated on
// the live network, so every number below is a wall-clock measurement on
// this machine.
// ---------------------------------------------------------------------------

const INPUT_DIM: usize = 16;

fn mlp_config() -> MlpConfig {
    MlpConfig {
        input_dim: INPUT_DIM,
        hidden_dims: vec![48, 48],
        num_classes: 8,
        groups: 4,
        dropout: 0.0,
        input_rescale: true,
    }
}

fn calibrated_profile() -> LatencyProfile {
    let mut rng = SeededRng::new(11);
    let mut net = Mlp::new(&mlp_config(), &mut rng);
    LatencyProfile::calibrate(
        &mut net,
        SliceRateList::from_rates(&[0.25, 0.5, 0.75, 1.0]),
        &[INPUT_DIM],
        512,
        5,
    )
}

/// Runs one single-worker engine over `trace` under the given policy and
/// reports the replay (virtual arrival clock, measured service times).
fn replay_measured(
    profile: &LatencyProfile,
    policy: RatePolicy,
    trace: &WorkloadTrace,
    latency: f64,
) -> ReplayReport {
    let mut rng = SeededRng::new(17);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let mut replica = Mlp::new(&mlp_config(), &mut SeededRng::new(18));
    weights.hydrate(&mut replica);
    let engine = Engine::start(
        EngineConfig {
            latency,
            // Plan to half the window: the other half absorbs measurement
            // jitter between calibration time and replay time.
            headroom: 0.5,
            max_queue: usize::MAX / 2,
        },
        SlaController::new(profile.clone(), policy),
        vec![Box::new(replica) as Box<dyn Layer + Send>],
    );
    let report = engine.replay(trace, |id| {
        Tensor::full([INPUT_DIM], ((id % 31) as f32) * 0.06 - 0.9)
    });
    engine.shutdown();
    report
}

/// Calm traffic sized from the calibrated profile itself, with two flash
/// crowds far beyond even the base subnet's capacity.
fn spike_trace(profile: &LatencyProfile, budget: f64) -> WorkloadTrace {
    let calm = (profile.max_batch(SliceRate::FULL, budget) * 7 / 10).max(1);
    let overload = profile.max_batch(SliceRate::new(0.25), budget) * 3;
    let arrivals: Vec<usize> = (0..60)
        .map(|t| {
            if (15..20).contains(&t) || (40..45).contains(&t) {
                overload
            } else {
                calm
            }
        })
        .collect();
    let rates = arrivals.iter().map(|&n| n as f64).collect();
    WorkloadTrace { arrivals, rates }
}

#[test]
fn measured_elastic_beats_every_fixed_rate_on_deadline_hits() {
    let _serial = serial();
    let profile = calibrated_profile();
    // Window sized so a full-width batch of a few hundred samples fits:
    // big enough that OS timing jitter is small relative to the budget.
    let budget = profile.predict(200, SliceRate::FULL);
    let latency = budget * 4.0; // window = T/2 = 2·budget, headroom 0.5
    let trace = spike_trace(&profile, budget);

    let elastic = replay_measured(&profile, RatePolicy::Elastic, &trace, latency);
    // Elastic never plans past the budget, so nearly everything it admits
    // hits the deadline even with measurement noise.
    // Rare multi-x outliers (OS scheduling) can push the odd batch past the
    // window; the bulk must hit the deadline.
    assert!(
        elastic.on_time as f64 >= elastic.served as f64 * 0.85,
        "elastic late too often: {} late of {} served",
        elastic.late,
        elastic.served
    );
    assert!(elastic.served > 0);

    for r in profile.list().iter() {
        let fixed = replay_measured(&profile, RatePolicy::Fixed(r), &trace, latency);
        // The inelastic server answers everything…
        assert_eq!(fixed.shed, 0);
        // …but under the flash crowds it answers late: the elastic engine
        // completes strictly more requests within the SLA.
        assert!(
            elastic.on_time > fixed.on_time,
            "fixed rate {r}: {} on-time vs elastic {} (elastic shed {})",
            fixed.on_time,
            elastic.on_time,
            elastic.shed
        );
    }
}

#[test]
fn measured_elastic_stays_on_time_with_multiple_workers() {
    let _serial = serial();
    let profile = calibrated_profile();
    let budget = profile.predict(200, SliceRate::FULL);
    let latency = budget * 4.0;
    let trace = spike_trace(&profile, budget);

    let mut rng = SeededRng::new(29);
    let mut proto = Mlp::new(&mlp_config(), &mut rng);
    let weights = SharedWeights::capture(&mut proto);
    let replicas = (0..3)
        .map(|i| {
            let mut m = Mlp::new(&mlp_config(), &mut SeededRng::new(100 + i));
            weights.hydrate(&mut m);
            Box::new(m) as Box<dyn Layer + Send>
        })
        .collect();
    let engine = Engine::start(
        EngineConfig {
            latency,
            headroom: 0.5,
            max_queue: usize::MAX / 2,
        },
        SlaController::elastic(profile),
        replicas,
    );
    let report = engine.replay(&trace, |_| Tensor::zeros([INPUT_DIM]));
    engine.shutdown();
    assert_eq!(report.served + report.shed, report.arrived);
    assert!(
        report.on_time as f64 >= report.served as f64 * 0.85,
        "late {} of {}",
        report.late,
        report.served
    );
}
