//! Offline stand-in for `criterion`.
//!
//! Measures real wall-clock time with warm-up, calibrated iteration counts
//! and multiple samples, reporting min/median/max per benchmark. Supports
//! the surface this workspace uses: `Criterion::default()` with
//! `warm_up_time`/`measurement_time`/`sample_size`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId::from_parameter`,
//! and the `criterion_group!`/`criterion_main!` macros. Passing `--test`
//! (as `cargo bench -- --test` or `cargo test --benches` do) runs every
//! benchmark body exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times a single benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the closure `iters` times, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier, preventing the optimiser from deleting the
/// benchmark body.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
            smoke: false,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Honours `--test` (smoke mode). Other harness flags (`--bench`,
    /// filters) are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.smoke = true;
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if self.smoke {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: ok (smoke)");
            return;
        }

        // Calibrate: find an iteration count whose batch takes >= ~2 ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 30 {
                break b.elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };

        // Warm up for the configured duration.
        let warm_iters = ((self.warm_up.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let mut b = Bencher {
            iters: warm_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / warm_iters as f64;

        // Measure: `sample_size` samples splitting the measurement budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let sample_iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion::default();
        c.smoke = true;
        let mut count = 0;
        c.bench_function("counted", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut total = 0u64;
        c.bench_function("sum", |b| {
            b.iter(|| {
                total = total.wrapping_add(black_box(1));
            })
        });
        assert!(total > 0);
    }

    #[test]
    fn group_labels_compose() {
        let mut c = Criterion::default();
        c.smoke = true;
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(0.5), &0.5f32, |b, &x| {
            b.iter(|| x * 2.0);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.25).id, "0.25");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
