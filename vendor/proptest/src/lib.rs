//! Offline stand-in for `proptest`.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over
//! integers and floats, `any::<T>()`, `collection::{vec, btree_set}`, and
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`.
//!
//! Generation is deterministic: each test derives its stream from a hash of
//! the test name, the case index and the rejection count, so failures
//! reproduce run to run. Failing cases are reported with their case index
//! and message; there is no shrinking.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Maximum `prop_assume!` rejections across the whole test.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// A failed or rejected test case body.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
        pub is_rejection: bool,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError {
                message,
                is_rejection: false,
            }
        }

        pub fn reject(message: String) -> Self {
            TestCaseError {
                message,
                is_rejection: true,
            }
        }
    }

    /// Deterministic generation stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        config: ProptestConfig,
        name: String,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            TestRunner {
                config,
                name: name.to_string(),
            }
        }

        pub fn run<F>(&mut self, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(&self.name);
            let mut rejects: u32 = 0;
            for case in 0..self.config.cases {
                loop {
                    let seed = base
                        ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                        ^ (rejects as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
                    let mut rng = TestRng::new(seed);
                    match body(&mut rng) {
                        Ok(()) => break,
                        Err(e) if e.is_rejection => {
                            rejects += 1;
                            if rejects > self.config.max_global_rejects {
                                panic!(
                                    "proptest `{}`: too many prop_assume! rejections ({})",
                                    self.name, rejects
                                );
                            }
                        }
                        Err(e) => panic!(
                            "proptest `{}` failed at case {case}/{}: {}",
                            self.name, self.config.cases, e.message
                        ),
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A deterministic value generator.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly picks one element of a fixed, non-empty list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy over the elements of `options` (mirrors
    /// `proptest::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.0.len();
            self.0[idx].clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite, sign-balanced, spanning several orders of magnitude.
            (rng.unit_f64() as f32 - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    /// Strategy wrapper returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.max_excl - self.min) as u64;
            self.min + (rng.next_u64() % span) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // `size` counts draws; duplicates collapse, as upstream allows.
            let draws = self.size.sample(rng);
            (0..draws).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub fn __run_body<F>(f: F) -> Result<(), test_runner::TestCaseError>
where
    F: FnOnce() -> Result<(), test_runner::TestCaseError>,
{
    f()
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __runner =
                    $crate::test_runner::TestRunner::new(__config, stringify!($name));
                __runner.run(|__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $crate::__run_body(move || {
                        $body
                        Ok(())
                    })
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "{} (`{:?}` vs `{:?}`)",
            ::std::format!($($fmt)*),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.5f32..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn assume_filters(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u8..10, 2..6),
            s in crate::collection::btree_set(0usize..100, 0..30),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 30);
        }

        #[test]
        fn any_values_generate(seed in any::<u64>(), flag in any::<bool>()) {
            // Touch both to ensure the strategies compile and run.
            let _ = (seed, flag);
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!((0usize..50).generate(&mut a), (0usize..50).generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
