//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace consumes:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`RngCore`], [`SeedableRng`]
//! (including the SplitMix64-based `seed_from_u64` default) and
//! [`distributions::Distribution`]. Not affiliated with the upstream crate.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into `Seed` bytes with SplitMix64, mirroring
    /// the upstream default so seeding behaviour is sane and well mixed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes().iter()) {
                *dst = *src;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::Rng;

    /// A sampling distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for each primitive: uniform over the whole
    /// type for integers/bool, uniform in `[0, 1)` for floats.
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        use super::super::Rng;
        use core::ops::{Range, RangeInclusive};

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty => $unit:expr),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit: $t = $unit(rng);
                        let v = self.start + (self.end - self.start) * unit;
                        // Guard against rounding up to the excluded endpoint.
                        if v >= self.end { self.start } else { v }
                    }
                }
            )*};
        }
        impl_float_range!(
            f32 => |rng: &mut R| (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32),
            f64 => |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f32 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let f: f64 = distributions::Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct ByteRng([u8; 32]);
        impl SeedableRng for ByteRng {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                ByteRng(seed)
            }
        }
        let a = ByteRng::seed_from_u64(42);
        let b = ByteRng::seed_from_u64(42);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, ByteRng::seed_from_u64(43).0);
    }
}
