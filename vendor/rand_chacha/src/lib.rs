//! Offline stand-in for `rand_chacha`: a real ChaCha8 stream-cipher RNG.
//!
//! This is a faithful ChaCha implementation (8 rounds, 64-bit block
//! counter), so streams are deterministic on every platform and of genuine
//! cryptographic-PRNG statistical quality. Streams are **not** bit-compatible
//! with the upstream crate, which this repository never relies on.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: 4 constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = x[i].wrapping_add(self.state[i]);
        }
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Current 64-bit block counter (diagnostics / tests).
    pub fn get_word_pos(&self) -> u64 {
        self.state[12] as u64 | ((self.state[13] as u64) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude equidistribution check: bit balance over many draws.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let draws = 4096;
        for _ in 0..draws {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expected = draws * 32;
        let dev = (ones as i64 - expected as i64).abs();
        assert!(dev < 4000, "bit balance off: {ones} vs {expected}");
    }

    #[test]
    fn gen_range_uses_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let v: f32 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
