//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based data model, serialization goes
//! through a small JSON-like [`Value`] tree: `Serialize` renders a value
//! into the tree and `Deserialize` reads one back out. `serde_json` (also
//! vendored) converts between [`Value`] and JSON text. The representation
//! conventions match upstream serde's JSON behaviour where this workspace
//! can observe them: externally-tagged enums, transparent newtype structs,
//! tuples and tuple structs as arrays, `Option` as value-or-null.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate tree every serializable type renders into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Alias kept for signatures written against upstream serde.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected single-char string, found {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected {ARITY}-tuple, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected map, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for output determinism; upstream HashMap order is arbitrary.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected map, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (not part of the public contract)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __expect_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(Error(format!("{ty}: expected object, found {other:?}"))),
    }
}

#[doc(hidden)]
pub fn __expect_seq<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
    match v {
        Value::Seq(items) if items.len() == len => Ok(items),
        other => Err(Error(format!(
            "{ty}: expected array of length {len}, found {other:?}"
        ))),
    }
}

#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    for (k, v) in entries {
        if k == key {
            return T::from_value(v)
                .map_err(|e| Error(format!("{ty}.{key}: {}", e.0)));
        }
    }
    Err(Error(format!("{ty}: missing field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(5)).unwrap(), Some(5));
    }

    #[test]
    fn tuples_are_seqs() {
        let v = ("a".to_string(), 1.5f32).to_value();
        assert_eq!(
            v,
            Value::Seq(vec![Value::Str("a".into()), Value::Float(1.5)])
        );
        let back: (String, f32) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, ("a".to_string(), 1.5));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f32::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::Int(-7)).is_err());
        assert_eq!(i32::from_value(&Value::UInt(9)).unwrap(), 9);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let entries = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(__field::<u32>(&entries, "a", "T").unwrap(), 1);
        assert!(__field::<u32>(&entries, "b", "T").is_err());
    }
}
