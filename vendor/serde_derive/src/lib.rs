//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Parses the item declaration directly from the proc-macro token stream
//! (no syn/quote) and emits impls of `serde::Serialize` /
//! `serde::Deserialize` over the `serde::Value` tree. Supports the shapes
//! this workspace declares: named structs, tuple/newtype/unit structs, and
//! enums with unit, newtype, tuple and struct variants. Generics and
//! `#[serde(...)]` attributes are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Splits a token list on top-level commas, tracking both delimiter groups
/// (implicit in `TokenTree::Group`) and angle-bracket depth, so commas inside
/// `Vec<(String, Tensor)>` or `BTreeMap<String, f64>` don't split fields.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Removes leading `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` is always followed by the bracketed attribute group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

/// Field names of a named-fields body: first ident of each comma chunk
/// (after attributes/visibility).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .filter_map(|chunk| {
            let chunk = strip_attrs_and_vis(&chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .filter(|chunk| !strip_attrs_and_vis(chunk).is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    let rest: Vec<TokenTree> = it.cloned().collect();
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    if kind == "struct" {
        let fields = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_arity(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    } else {
        let body = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        };
        let variants = split_commas(body.into_iter().collect())
            .into_iter()
            .filter_map(|chunk| {
                let chunk = strip_attrs_and_vis(&chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let fields = match chunk.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple_arity(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                Some((vname, fields))
            })
            .collect();
        Item::Enum { name, variants }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let vals: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            vals.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match __v {{\n\
                         ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         other => ::std::result::Result::Err(::serde::Error(\
                             ::std::format!(\"{name}: expected null, found {{other:?}}\"))),\n\
                     }}"
                ),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __items = ::serde::__expect_seq(__v, \"{name}\", {n})?;\n\
                         ::std::result::Result::Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__field(__entries, \"{f}\", \"{name}\")?")
                        })
                        .collect();
                    format!(
                        "{{ let __entries = ::serde::__expect_map(__v, \"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{ {} }}) }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __items = ::serde::__expect_seq(\
                             __inner, \"{name}::{v}\", {n})?;\n\
                             ::std::result::Result::Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fnames) => {
                        let items: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__field(__ventries, \"{f}\", \
                                     \"{name}::{v}\")?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __ventries = ::serde::__expect_map(\
                             __inner, \"{name}::{v}\")?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error(\
                                     ::std::format!(\
                                     \"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::Error(\
                                         ::std::format!(\
                                         \"{name}: unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\
                                 \"{name}: expected variant, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
