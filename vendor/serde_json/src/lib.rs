//! Offline stand-in for `serde_json`: JSON text ⇄ `serde::Value`.
//!
//! Provides `to_string`, `to_string_pretty`, `from_str` and `Error` — the
//! surface this workspace uses. Integers are preserved exactly; floats are
//! formatted with Rust's shortest-round-trip `{:?}` so every finite value
//! survives a round trip.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(s: impl Into<String>) -> Self {
        Error(s.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that round-trips.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/Inf; emit null like upstream's lossy printers.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(item, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 for multibyte characters.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::msg(format!("integer out of range: {text}")));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number: {text}")))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("false").unwrap(), false);
    }

    #[test]
    fn round_trip_collections() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.25), ("b".into(), -3.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, f, "{json}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\" back\\slash\ttab".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn unicode_round_trip() {
        let s = "héllo → 世界".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
